"""Unit and property tests for the guest environment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest import (
    GuestFileSystem,
    GuestProcess,
    ProcessState,
    VMInstance,
    VMState,
    blcr_dump,
    blcr_restore,
    write_boot_noise,
    write_runtime_noise,
)
from repro.util import LiteralBytes, SyntheticBytes
from repro.util.config import CheckpointSpec, VMSpec
from repro.util.errors import FileSystemError, GuestError, ProcessError
from repro.vdisk import SparseDevice

DEVICE_SIZE = 64 * 1024 * 1024


def make_fs():
    device = SparseDevice(DEVICE_SIZE, block_size=256 * 1024)
    return GuestFileSystem.format(device), device


class TestGuestFileSystem:
    def test_write_read_roundtrip(self):
        fs, _dev = make_fs()
        fs.write_file("/data/output.dat", b"hello world")
        assert fs.read_file("/data/output.dat").read() == b"hello world"

    def test_append(self):
        fs, _dev = make_fs()
        fs.write_file("/var/log/app.log", b"line1\n")
        fs.write_file("/var/log/app.log", b"line2\n", append=True)
        assert fs.read_file("/var/log/app.log").read() == b"line1\nline2\n"

    def test_missing_file_raises(self):
        fs, _dev = make_fs()
        with pytest.raises(FileSystemError):
            fs.read_file("/nope")

    def test_relative_path_rejected(self):
        fs, _dev = make_fs()
        with pytest.raises(FileSystemError):
            fs.write_file("relative.txt", b"x")

    def test_listdir_and_exists(self):
        fs, _dev = make_fs()
        fs.write_file("/a/x", b"1")
        fs.write_file("/a/y", b"2")
        fs.write_file("/b/z", b"3")
        assert fs.listdir("/a") == ["/a/x", "/a/y"]
        assert fs.exists("/a/x") and not fs.exists("/a/q")

    def test_delete(self):
        fs, _dev = make_fs()
        fs.write_file("/tmp/file", b"x")
        fs.delete("/tmp/file")
        assert not fs.exists("/tmp/file")
        with pytest.raises(FileSystemError):
            fs.delete("/tmp/file")

    def test_sync_persists_across_mount(self):
        fs, dev = make_fs()
        fs.write_file("/ckpt/rank0.dat", SyntheticBytes("state", 100_000))
        fs.sync()
        remounted = GuestFileSystem.mount(dev)
        assert remounted.read_file("/ckpt/rank0.dat") == SyntheticBytes("state", 100_000)

    def test_unsynced_data_lost_on_remount(self):
        fs, dev = make_fs()
        fs.write_file("/ckpt/synced.dat", b"synced")
        fs.sync()
        fs.write_file("/ckpt/unsynced.dat", b"lost")
        remounted = GuestFileSystem.mount(dev)
        assert remounted.exists("/ckpt/synced.dat")
        assert not remounted.exists("/ckpt/unsynced.dat")

    def test_unsynced_append_rolls_back(self):
        """Log lines appended after the last sync are absent after remount --
        the file-system rollback property the paper motivates."""
        fs, dev = make_fs()
        fs.write_file("/var/log/app.log", b"before\n")
        fs.sync()
        fs.write_file("/var/log/app.log", b"after-crash\n", append=True)
        remounted = GuestFileSystem.mount(dev)
        assert remounted.read_file("/var/log/app.log").read() == b"before\n"

    def test_dirty_accounting(self):
        fs, _dev = make_fs()
        fs.write_file("/a", b"x" * 100)
        assert fs.dirty_files == ["/a"]
        assert fs.dirty_bytes == 100
        fs.sync()
        assert fs.dirty_files == []
        assert fs.dirty_bytes == 0

    def test_fsync_single_file(self):
        fs, dev = make_fs()
        fs.write_file("/one", b"1" * 10)
        fs.write_file("/two", b"2" * 10)
        fs.fsync("/one")
        remounted = GuestFileSystem.mount(dev)
        assert remounted.exists("/one") and not remounted.exists("/two")

    def test_stat(self):
        fs, _dev = make_fs()
        fs.write_file("/file", b"abc")
        st_before = fs.stat("/file")
        assert st_before.size == 3 and st_before.dirty
        fs.sync()
        st_after = fs.stat("/file")
        assert not st_after.dirty and st_after.on_disk_size >= 3

    def test_mount_unformatted_device_fails(self):
        device = SparseDevice(DEVICE_SIZE)
        with pytest.raises(FileSystemError):
            GuestFileSystem.mount(device)

    def test_device_full(self):
        device = SparseDevice(5 * 1024 * 1024, block_size=64 * 1024)
        fs = GuestFileSystem.format(device)
        fs.write_file("/big", SyntheticBytes("big", 4 * 1024 * 1024))
        with pytest.raises(FileSystemError):
            fs.sync()

    def test_rewrite_in_place_does_not_leak_space(self):
        fs, _dev = make_fs()
        fs.write_file("/f", b"a" * 8192)
        fs.sync()
        used = fs.used_bytes
        fs.write_file("/f", b"b" * 4096)
        fs.sync()
        assert fs.used_bytes == used


@settings(max_examples=20, deadline=None)
@given(
    files=st.dictionaries(
        st.sampled_from(["/a", "/b/c", "/d/e/f", "/log"]),
        st.binary(min_size=0, max_size=5000),
        min_size=1,
        max_size=4,
    )
)
def test_property_fs_survives_remount(files):
    """After sync, a remounted file system returns exactly what was written."""
    fs, dev = make_fs()
    for path, data in files.items():
        fs.write_file(path, data)
    fs.sync()
    remounted = GuestFileSystem.mount(dev)
    for path, data in files.items():
        assert remounted.read_file(path).read() == data


class TestGuestProcess:
    def test_allocate_and_account(self):
        proc = GuestProcess("bench")
        proc.allocate("buffer", SyntheticBytes("buf", 1000))
        proc.allocate("scratch", b"123")
        assert proc.allocated_bytes == 1003
        assert proc.segment("scratch").read() == b"123"

    def test_free(self):
        proc = GuestProcess("bench")
        proc.allocate("x", b"1234")
        proc.free("x")
        assert proc.allocated_bytes == 0
        with pytest.raises(ProcessError):
            proc.free("x")

    def test_lifecycle(self):
        proc = GuestProcess("bench")
        proc.stop()
        assert proc.state is ProcessState.STOPPED
        proc.resume()
        assert proc.state is ProcessState.RUNNING
        proc.kill()
        assert proc.state is ProcessState.DEAD
        with pytest.raises(ProcessError):
            proc.allocate("y", b"z")


class TestBLCR:
    def test_dump_restore_roundtrip(self):
        proc = GuestProcess("mpi-rank-3")
        proc.allocate("domain", SyntheticBytes("domain", 50_000))
        proc.allocate("halo", b"halo-data")
        proc.registers["pc"] = 1234
        proc.iteration = 17
        dump = blcr_dump(proc)
        restored = blcr_restore(dump)
        assert restored.name == "mpi-rank-3"
        assert restored.pid == proc.pid
        assert restored.iteration == 17
        assert restored.registers["pc"] == 1234
        assert restored.segment("domain") == proc.segment("domain")
        assert restored.segment("halo").read() == b"halo-data"

    def test_dump_size_covers_all_memory(self):
        proc = GuestProcess("fat")
        proc.allocate("a", SyntheticBytes("a", 200_000))
        proc.allocate("b", SyntheticBytes("b", 300_000))
        dump = blcr_dump(proc)
        assert dump.size >= 500_000
        assert dump.size <= 500_000 + 128 * 1024

    def test_dump_dead_process_rejected(self):
        proc = GuestProcess("dead")
        proc.kill()
        with pytest.raises(ProcessError):
            blcr_dump(proc)

    def test_restore_corrupted_dump_rejected(self):
        with pytest.raises(ProcessError):
            blcr_restore(LiteralBytes(b"garbage"))


class TestVMInstance:
    def _booted_vm(self):
        vm = VMInstance("vm-0", VMSpec())
        device = SparseDevice(DEVICE_SIZE, block_size=256 * 1024)
        fs = GuestFileSystem.format(device)
        vm.attach_disk(device)
        vm.mark_booting()
        vm.mark_running(fs)
        return vm

    def test_boot_lifecycle(self):
        vm = self._booted_vm()
        assert vm.is_running and vm.boot_count == 1

    def test_boot_without_disk_rejected(self):
        vm = VMInstance("vm-1", VMSpec())
        with pytest.raises(GuestError):
            vm.mark_booting()

    def test_suspend_resume_stops_processes(self):
        vm = self._booted_vm()
        proc = vm.spawn_process("app")
        vm.suspend()
        assert vm.state is VMState.SUSPENDED
        assert proc.state is ProcessState.STOPPED
        vm.resume()
        assert proc.state is ProcessState.RUNNING

    def test_terminate_clears_state(self):
        vm = self._booted_vm()
        vm.spawn_process("app")
        vm.terminate()
        assert vm.state is VMState.TERMINATED
        assert vm.processes == {}
        assert vm.disk is None

    def test_spawn_requires_running(self):
        vm = VMInstance("vm-2", VMSpec())
        with pytest.raises(GuestError):
            vm.spawn_process("app")

    def test_runtime_state_bytes(self):
        vm = self._booted_vm()
        proc = vm.spawn_process("app")
        proc.allocate("buffer", SyntheticBytes("buf", 1_000_000))
        assert vm.runtime_state_bytes == VMSpec().savevm_state_bytes + 1_000_000


class TestOsNoise:
    def test_boot_noise_volume(self):
        fs, _dev = make_fs()
        spec = CheckpointSpec()
        written = write_boot_noise(fs, spec, "vm-7")
        assert written >= spec.os_noise_bytes * 0.9
        assert len(fs.listdir("/")) >= min(spec.os_noise_files, 12)
        assert fs.dirty_files == []  # boot noise is synced

    def test_boot_noise_deterministic(self):
        fs1, _ = make_fs()
        fs2, _ = make_fs()
        spec = CheckpointSpec()
        assert write_boot_noise(fs1, spec, "vm-7") == write_boot_noise(fs2, spec, "vm-7")

    def test_runtime_noise_appends(self):
        fs, _dev = make_fs()
        spec = CheckpointSpec()
        write_boot_noise(fs, spec, "vm-7")
        size_before = fs.stat("/var/log/syslog").size
        write_runtime_noise(fs, spec, "vm-7", epoch=1)
        assert fs.stat("/var/log/syslog").size > size_before
