"""Live-migration tests: properties, determinism, registry, API, scenarios.

The migration engine rides on contracts the rest of the reproduction
already depends on, so its tests are mostly *invariant* tests:

* pre-copy -- every byte committed during the migration is accounted by
  exactly one round (conservation), the dirty set per round is monotone
  when the write rate decreases, and the residue COMMIT leaves nothing
  dirty behind;
* post-copy -- every residue block leaves the source exactly once, through
  exactly one of the switchover / demand-fault / prefetch channels
  (audited via the pump's serve log);
* determinism -- identical cells give byte-identical rows in-process,
  across worker counts, with tracing on or off, and independently of
  unrelated traffic on a disjoint fabric;
* the registry's ``live_migration`` capability flag matches what each
  backend actually implements.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import SyntheticBenchmark
from repro.api import Session
from repro.cluster import Cloud
from repro.core.backends import backend_names, create_backend, get_backend
from repro.core.migration import (
    MIGRATION_MODES,
    BlobCRMigrateDeployment,
    PostCopyPump,
    migration_capable,
)
from repro.guest.filesystem import METADATA_REGION
from repro.obs.tracer import TRACER
from repro.runner import ParallelRunner, RunConfig, load_all, parse_selectors
from repro.scenarios.fault_tolerance import fault_tolerant_cluster
from repro.scenarios.migration import (
    EVAC_POLICIES,
    EVAC_SCENARIO,
    MIG_SCENARIO,
    merge_evac,
    merge_mig,
    run_evac_cell,
    run_mig_cell,
)
from repro.service.traffic import background_flow
from repro.util.bytesource import SyntheticBytes
from repro.util.config import GRAPHENE
from repro.util.errors import ConfigurationError, FailureInjected, MigrationError
from repro.util.units import MB

SMALL = fault_tolerant_cluster(GRAPHENE.scaled(compute_nodes=6, service_nodes=3))

BLOCK = SMALL.checkpoint.cow_block_size


def drive(cloud, gen, name="test-driver"):
    """Run one simulation generator to completion; return its value."""
    box = {}

    def wrapper():
        box["value"] = yield from gen

    cloud.run(cloud.process(wrapper(), name=name))
    return box["value"]


def make_deployment(**options):
    cloud = Cloud(SMALL)
    return cloud, create_backend("blobcr-migrate", cloud, **options)


def settled(deployment, bench, n=2):
    """Generator: deploy ``n`` instances, fill, take the anchor checkpoint."""
    yield from deployment.deploy(n, processes_per_instance=1)
    bench.fill_buffers()
    checkpoint = yield from bench.checkpoint_app_level()
    return checkpoint


# -- the post-copy pump: exactly-once, unit level --------------------------------------


class _Sink:
    """Minimal destination: what the pump needs (block size + writes)."""

    def __init__(self, block_size=BLOCK):
        self.block_size = block_size
        self.writes = []

    def write(self, offset, payload):
        self.writes.append((offset, payload.size))


def make_pump(sizes):
    """A pump over blocks {index: payload_bytes} between two real nodes."""
    cloud = Cloud(GRAPHENE.scaled(compute_nodes=2, service_nodes=2))
    sink = _Sink()
    payloads = {i: SyntheticBytes(("pump", i), size) for i, size in sizes.items()}
    pump = PostCopyPump(
        cloud, cloud.compute_nodes[0].name, cloud.compute_nodes[1].name,
        sink, payloads, "vm-test",
    )
    return cloud, pump, sink


@st.composite
def pump_workloads(draw):
    sizes = draw(
        st.dictionaries(st.integers(0, 63), st.integers(1, BLOCK), min_size=1, max_size=24)
    )
    windows = draw(
        st.lists(
            st.tuples(st.integers(0, 63 * BLOCK), st.integers(1, 8 * BLOCK)),
            max_size=6,
        )
    )
    return sizes, windows


class TestPostCopyPump:
    @settings(max_examples=25, deadline=None)
    @given(workload=pump_workloads())
    def test_every_block_served_exactly_once(self, workload):
        sizes, windows = workload
        cloud, pump, sink = make_pump(sizes)

        def scenario():
            for offset, length in windows:
                yield from pump.fault_range(offset, length)
            yield from pump.prefetch_sweep()

        drive(cloud, scenario())
        served = [block for block, _channel in pump.served]
        assert pump.drained
        assert sorted(served) == sorted(sizes)  # every block, and only those
        assert len(set(served)) == len(served)  # never twice
        assert len(sink.writes) == len(sizes)  # one install per block
        total = pump.remote_fault_bytes + pump.prefetched_bytes + pump.state_bytes
        assert total == sum(sizes.values())  # byte conservation per channel

    @settings(max_examples=25, deadline=None)
    @given(workload=pump_workloads())
    def test_serve_log_is_deterministic(self, workload):
        sizes, windows = workload

        def run():
            cloud, pump, _sink = make_pump(sizes)

            def scenario():
                for offset, length in windows:
                    yield from pump.fault_range(offset, length)
                yield from pump.prefetch_sweep()

            drive(cloud, scenario())
            return pump.served, cloud.now

        assert run() == run()

    def test_same_window_faulted_twice_is_a_noop(self):
        cloud, pump, sink = make_pump({0: BLOCK, 1: BLOCK, 5: 100})

        def scenario():
            first = yield from pump.fault_range(0, 2 * BLOCK)
            second = yield from pump.fault_range(0, 2 * BLOCK)
            return first, second

        first, second = drive(cloud, scenario())
        assert first == 2 * BLOCK
        assert second == 0
        assert len(sink.writes) == 2
        assert not pump.drained  # block 5 still pending

    def test_empty_window_serves_nothing(self):
        cloud, pump, _sink = make_pump({3: 10})
        assert drive(cloud, pump.fault_range(0, 0)) == 0
        assert drive(cloud, pump.fault_range(10 * BLOCK, BLOCK)) == 0
        assert not pump.drained

    def test_state_channel_counted_separately(self):
        cloud, pump, _sink = make_pump({0: BLOCK, 1: 7, 9: BLOCK})

        def scenario():
            yield from pump.fault_range(0, 2 * BLOCK, channel="state")
            yield from pump.prefetch_sweep()

        drive(cloud, scenario())
        assert pump.state_blocks == 2 and pump.state_bytes == BLOCK + 7
        assert pump.remote_faults == 0
        assert pump.prefetched_blocks == 1 and pump.prefetched_bytes == BLOCK
        assert [channel for _b, channel in pump.served] == ["state", "state", "prefetch"]

    def test_prefetch_sweep_moves_contiguous_runs(self):
        cloud, pump, _sink = make_pump({0: 1, 1: 1, 2: 1, 7: 1, 8: 1})
        drive(cloud, pump.prefetch_sweep())
        assert pump.drained
        assert [block for block, _c in pump.served] == [0, 1, 2, 7, 8]


# -- pre-copy invariants ---------------------------------------------------------------


def _writes_strategy():
    return st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 4 * MB)), min_size=1, max_size=5
    )


class TestPreCopyInvariants:
    @settings(max_examples=8, deadline=None)
    @given(writes=_writes_strategy())
    def test_bytes_moved_conservation(self, writes):
        """sum(round bytes) + residue == bytes committed by the migration."""
        cloud, deployment = make_deployment()
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def scenario():
            yield from settled(deployment, bench, n=1)
            instance = deployment.instances[0]
            for index, (slot, size) in enumerate(writes):
                data = SyntheticBytes(("conserve", index), size)
                yield from deployment.guest_write_and_sync(
                    instance, f"/data/w-{slot}.dat", data
                )
            source = instance.backend
            committed_before = source.commit_bytes_total
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            result = yield from deployment.migrate_instance(instance, target)
            return result, source, committed_before

        result, source, before = drive(cloud, scenario())
        moved = result.round_bytes + result.residue_bytes
        assert moved == source.commit_bytes_total - before
        assert source.dirty_bytes == 0  # the residue round left nothing behind
        assert result.rounds[0].bytes_moved > 0

    @settings(max_examples=8, deadline=None)
    @given(writes=_writes_strategy())
    def test_migrated_content_is_exact(self, writes):
        cloud, deployment = make_deployment()
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def scenario():
            yield from settled(deployment, bench, n=1)
            instance = deployment.instances[0]
            expected = {}
            for index, (slot, size) in enumerate(writes):
                data = SyntheticBytes(("exact", index), size)
                expected[f"/data/w-{slot}.dat"] = data
                yield from deployment.guest_write_and_sync(
                    instance, f"/data/w-{slot}.dat", data
                )
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            yield from deployment.migrate_instance(instance, target)
            for path, data in expected.items():
                found = yield from deployment.guest_read(instance, path)
                assert found.size == data.size
                assert found.read(0, found.size) == data.read(0, data.size)
            return instance

        instance = drive(cloud, scenario())
        assert instance.vm.is_running

    @settings(max_examples=6, deadline=None)
    @given(
        start_bytes=st.integers(8 * MB, 24 * MB),
        decay=st.floats(0.2, 0.7),
    )
    def test_dirty_rounds_monotone_under_decreasing_write_rate(self, start_bytes, decay):
        """With a geometrically decaying writer, round dirty sets shrink."""
        cloud, deployment = make_deployment(
            precopy_threshold_bytes=0, precopy_max_rounds=6
        )
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def writer(instance, stop):
            tick = 0
            while not stop["done"]:
                yield cloud.env.timeout(0.02)
                if stop["done"] or not instance.vm.is_running:
                    return
                size = max(1, int(start_bytes * decay ** tick))
                data = SyntheticBytes(("decay", tick), size)
                yield from deployment.guest_write_and_sync(
                    instance, "/data/hot.dat", data
                )
                tick += 1

        def scenario():
            yield from settled(deployment, bench, n=1)
            instance = deployment.instances[0]
            data = SyntheticBytes("decay-initial", start_bytes)
            yield from deployment.guest_write_and_sync(instance, "/data/hot.dat", data)
            stop = {"done": False}
            cloud.process(writer(instance, stop), name="decay-writer")
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            result = yield from deployment.migrate_instance(instance, target)
            stop["done"] = True
            return result

        result = drive(cloud, scenario())
        dirty = [r.dirty_blocks for r in result.rounds]
        assert dirty[0] > 0
        # Monotone from the second round on: each round ships what the
        # (slowing) writer dirtied during the previous, shorter round.
        assert all(a >= b for a, b in zip(dirty[1:], dirty[2:]))

    def test_round_cap_bounds_the_iterations(self):
        cloud, deployment = make_deployment(
            precopy_threshold_bytes=0, precopy_max_rounds=2
        )
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def writer(instance, stop):
            tick = 0
            while not stop["done"]:
                yield cloud.env.timeout(0.01)
                if stop["done"] or not instance.vm.is_running:
                    return
                data = SyntheticBytes(("agg", tick), 8 * MB)
                yield from deployment.guest_write_and_sync(
                    instance, "/data/hot.dat", data
                )
                tick += 1

        def scenario():
            yield from settled(deployment, bench, n=1)
            instance = deployment.instances[0]
            stop = {"done": False}
            cloud.process(writer(instance, stop), name="agg-writer")
            yield cloud.env.timeout(0.05)
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            result = yield from deployment.migrate_instance(instance, target)
            stop["done"] = True
            return result

        result = drive(cloud, scenario())
        assert len(result.rounds) <= 2
        assert not result.rolled_back

    def test_converged_dirty_set_stops_after_one_round(self):
        cloud, deployment = make_deployment(precopy_threshold_bytes=10**12)
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def scenario():
            yield from settled(deployment, bench, n=1)
            instance = deployment.instances[0]
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            result = yield from deployment.migrate_instance(instance, target)
            return result

        result = drive(cloud, scenario())
        assert len(result.rounds) == 1
        assert result.downtime_s > 0
        assert result.downtime_s <= result.total_migration_s


# -- post-copy, engine level -----------------------------------------------------------


class TestPostCopyEngine:
    def _migrate(self, demand=("/data/hot.dat",)):
        cloud, deployment = make_deployment()
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def scenario():
            yield from settled(deployment, bench, n=1)
            instance = deployment.instances[0]
            data = SyntheticBytes("postcopy-hot", 6 * MB)
            yield from deployment.guest_write_and_sync(instance, "/data/hot.dat", data)
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            result = yield from deployment.migrate_instance(
                instance, target, mode="post-copy", demand_paths=demand
            )
            found = yield from deployment.guest_read(instance, "/data/hot.dat")
            assert found.read(0, found.size) == data.read(0, data.size)
            return result, deployment, instance

        return cloud, drive(cloud, scenario())

    def test_exactly_once_across_all_channels(self):
        _cloud, (result, deployment, _instance) = self._migrate()
        pump = deployment.last_pump
        assert pump is not None and pump.drained
        blocks = [block for block, _channel in pump.served]
        assert len(set(blocks)) == len(blocks)
        assert result.remote_faults == pump.remote_faults > 0
        assert result.prefetched_blocks == pump.prefetched_blocks
        assert result.remote_fault_bytes == pump.remote_fault_bytes
        # Metadata blocks crossed on the state channel, below the region cap.
        state_blocks = [b for b, c in pump.served if c == "state"]
        assert state_blocks
        assert all(b < METADATA_REGION // BLOCK for b in state_blocks)

    def test_no_rounds_and_no_residue(self):
        _cloud, (result, _deployment, _instance) = self._migrate()
        assert result.mode == "post-copy"
        assert result.rounds == ()
        assert result.residue_bytes == 0
        assert result.state_bytes > 0

    def test_without_demand_paths_everything_prefetches(self):
        _cloud, (result, _deployment, _instance) = self._migrate(demand=())
        assert result.remote_faults == 0
        assert result.prefetched_blocks > 0

    def test_instance_lands_running_on_target(self):
        _cloud, (result, _deployment, instance) = self._migrate()
        assert instance.node_name == result.target_node
        assert instance.vm.is_running
        assert result.downtime_s < result.total_migration_s


# -- stop-and-copy (qcow2-full) and the latent capability gap --------------------------


class TestStopAndCopy:
    def _migrate_full(self):
        cloud = Cloud(SMALL)
        deployment = create_backend("qcow2-full", cloud)
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def scenario():
            yield from deployment.deploy(1, processes_per_instance=1)
            bench.fill_buffers()
            yield from deployment.checkpoint_all(tag="full")
            instance = deployment.instances[0]
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            result = yield from deployment.migrate_instance(instance, target)
            return result, deployment, instance

        return drive(cloud, scenario())

    def test_monolithic_migration_completes(self):
        result, deployment, instance = self._migrate_full()
        assert result.mode == "stop-and-copy"
        assert instance.node_name == result.target_node
        assert instance.vm.is_running
        assert deployment.migrations == [result]

    def test_whole_window_is_downtime(self):
        result, _deployment, _instance = self._migrate_full()
        assert result.downtime_s == result.total_migration_s
        assert result.rounds == ()
        assert result.residue_bytes > 0  # the full image crossed the wire

    def test_live_modes_rejected(self):
        cloud = Cloud(SMALL)
        deployment = create_backend("qcow2-full", cloud)

        def scenario():
            yield from deployment.deploy(1, processes_per_instance=1)
            instance = deployment.instances[0]
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            yield from deployment.migrate_instance(instance, target, mode="pre-copy")

        with pytest.raises(MigrationError, match="monolithic"):
            drive(cloud, scenario())

    def test_precopy_beats_stop_and_copy_downtime(self):
        """The CI gate's property: live pre-copy downtime is shorter."""

        def downtime(backend, mode):
            cloud = Cloud(SMALL)
            deployment = create_backend(backend, cloud)
            bench = SyntheticBenchmark(deployment, 4 * MB)

            def scenario():
                yield from deployment.deploy(1, processes_per_instance=1)
                bench.fill_buffers()
                if backend == "qcow2-full":
                    yield from deployment.checkpoint_all(tag="ref")
                else:
                    yield from bench.checkpoint_app_level()
                instance = deployment.instances[0]
                target = cloud.reserve_nodes(1, owner=deployment)[0]
                result = yield from deployment.migrate_instance(
                    instance, target, mode=mode
                )
                return result

            return drive(cloud, scenario()).downtime_s

        assert downtime("blobcr-migrate", "pre-copy") < downtime(
            "qcow2-full", "stop-and-copy"
        )


# -- error handling --------------------------------------------------------------------


class TestEngineErrors:
    def test_unknown_mode_rejected(self):
        cloud, deployment = make_deployment()

        def scenario():
            yield from deployment.deploy(1, processes_per_instance=1)
            instance = deployment.instances[0]
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            yield from deployment.migrate_instance(instance, target, mode="warp")

        with pytest.raises(MigrationError, match="unknown migration mode"):
            drive(cloud, scenario())

    def test_not_running_rejected(self):
        cloud, deployment = make_deployment()

        def scenario():
            yield from deployment.deploy(1, processes_per_instance=1)
            instance = deployment.instances[0]
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            deployment.kill_all()
            yield from deployment.migrate_instance(instance, target)

        with pytest.raises(MigrationError, match="not running"):
            drive(cloud, scenario())

    def test_self_migration_rejected(self):
        cloud, deployment = make_deployment()

        def scenario():
            yield from deployment.deploy(1, processes_per_instance=1)
            instance = deployment.instances[0]
            yield from deployment.migrate_instance(instance, instance.node_name)

        with pytest.raises(MigrationError, match="own host"):
            drive(cloud, scenario())

    def test_dead_target_rejected(self):
        cloud, deployment = make_deployment()

        def scenario():
            yield from deployment.deploy(1, processes_per_instance=1)
            instance = deployment.instances[0]
            target = cloud.compute_nodes[-1].name
            cloud.node(target).fail()
            yield from deployment.migrate_instance(instance, target)

        with pytest.raises(FailureInjected):
            drive(cloud, scenario())

    def test_invalid_tuning_rejected(self):
        cloud = Cloud(SMALL)
        with pytest.raises(MigrationError, match="threshold"):
            BlobCRMigrateDeployment(cloud, precopy_threshold_bytes=-1)
        with pytest.raises(MigrationError, match="round cap"):
            BlobCRMigrateDeployment(Cloud(SMALL), precopy_max_rounds=0)

    def test_unknown_option_rejected_by_registry(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            create_backend("blobcr-migrate", Cloud(SMALL), warp_factor=9)


# -- registry capabilities (the latent-flag satellite) ---------------------------------


class TestCapabilityFlags:
    def test_flag_matches_implementation_for_every_backend(self):
        for name in backend_names():
            info = get_backend(name)
            assert info.capabilities.live_migration == migration_capable(
                info.factory
            ), f"{name}: live_migration flag disagrees with the implementation"

    def test_blobcr_migrate_is_registered(self):
        assert "blobcr-migrate" in backend_names()
        info = get_backend("blobcr-migrate")
        assert info.capabilities.live_migration
        assert info.capabilities.incremental
        assert "pre-copy" in info.description

    def test_modes_constant_covers_all_modes(self):
        assert MIGRATION_MODES == ("pre-copy", "post-copy", "stop-and-copy")

    def test_tuning_options_are_honoured(self):
        deployment = create_backend(
            "blobcr-migrate", Cloud(SMALL), precopy_max_rounds=3,
            precopy_threshold_bytes=0,
        )
        assert deployment.precopy_max_rounds == 3
        assert deployment.precopy_threshold_bytes == 0


# -- the Session facade ----------------------------------------------------------------


class TestSessionMigrate:
    def _session(self):
        session = Session(SMALL)
        session.deploy("blobcr-migrate", n=2)
        session.checkpoint()
        return session

    def test_migrate_default_instance_and_target(self):
        session = self._session()
        result = session.migrate()
        assert result.instance_id == session.deployment.instances[0].instance_id
        assert session.deployment.instances[0].node_name == result.target_node
        assert result.mode == "pre-copy"
        assert result.downtime_s > 0
        assert result.total_bytes_moved > 0
        assert not result.rolled_back
        assert result.handle.to_row()["mode"] == "pre-copy"

    def test_migrate_post_copy_explicit(self):
        session = self._session()
        instance_id = session.deployment.instances[1].instance_id
        result = session.migrate(instance_id=instance_id, mode="post-copy")
        assert result.instance_id == instance_id
        assert result.mode == "post-copy"
        assert result.rounds == 0

    def test_backend_without_capability_refused(self):
        session = Session(SMALL)
        session.deploy("blobcr", n=1)
        with pytest.raises(ConfigurationError, match="live migration"):
            session.migrate()

    def test_qcow2_full_stop_and_copy_through_session(self):
        session = Session(SMALL)
        session.deploy("qcow2-full", n=1)
        session.checkpoint()
        result = session.migrate(mode="stop-and-copy")
        assert result.mode == "stop-and-copy"
        assert result.downtime_s == result.total_s

    def test_session_migrations_are_deterministic(self):
        def run():
            session = self._session()
            result = session.migrate(mode="post-copy", demand_paths=("/ckpt",))
            return (
                result.downtime_s, result.total_s, result.total_bytes_moved,
                result.remote_faults, result.target_node,
            )

        assert run() == run()


# -- concurrent migrations -------------------------------------------------------------


class TestMigrateAll:
    def test_two_instances_migrate_concurrently(self):
        cloud, deployment = make_deployment()
        bench = SyntheticBenchmark(deployment, 4 * MB)

        def scenario():
            yield from settled(deployment, bench, n=2)
            targets = cloud.reserve_nodes(2, owner=deployment)
            mapping = {
                inst.instance_id: target
                for inst, target in zip(deployment.instances, targets)
            }
            results = yield from deployment.migrate_all(mapping)
            return mapping, results

        mapping, results = drive(cloud, scenario())
        # Results come back in mapping order regardless of completion order.
        assert [r.instance_id for r in results] == list(mapping)
        assert [r.target_node for r in results] == list(mapping.values())
        assert all(not r.rolled_back for r in results)
        for instance in deployment.instances:
            assert instance.node_name == mapping[instance.instance_id]
            assert instance.vm.is_running
        assert sorted(m.instance_id for m in deployment.migrations) == sorted(mapping)

    def test_migrate_all_is_deterministic(self):
        def run():
            cloud, deployment = make_deployment()
            bench = SyntheticBenchmark(deployment, 4 * MB)

            def scenario():
                yield from settled(deployment, bench, n=2)
                targets = cloud.reserve_nodes(2, owner=deployment)
                mapping = {
                    inst.instance_id: target
                    for inst, target in zip(deployment.instances, targets)
                }
                results = yield from deployment.migrate_all(mapping, mode="post-copy")
                return results

            return [
                (r.instance_id, r.downtime_s, r.total_migration_s, r.total_bytes_moved)
                for r in drive(cloud, scenario())
            ]

        assert run() == run()


# -- scenario cells and their determinism contract -------------------------------------

FAST_EVAC = dict(instances=2, buffer_bytes=4 * MB, steady_s=6.0, spec=SMALL)


class TestEvacScenario:
    @pytest.mark.parametrize("policy", EVAC_POLICIES)
    def test_policy_survives_the_predicted_failure(self, policy):
        out = run_evac_cell(policy, 30.0, **FAST_EVAC)
        assert out["failures"] == 1
        assert out["survivors_ok"]
        assert out["verified"]
        assert out["downtime_s"] > 0
        assert out["bytes_moved"] > 0

    def test_live_policies_finish_before_the_crash(self):
        for policy in ("pre-copy", "post-copy"):
            out = run_evac_cell(policy, 30.0, **FAST_EVAC)
            assert out["completed_before_failure"]
            assert not out["rolled_back"]

    def test_ckpt_restart_pays_full_downtime(self):
        live = run_evac_cell("pre-copy", 30.0, **FAST_EVAC)
        reactive = run_evac_cell("ckpt-restart", 30.0, **FAST_EVAC)
        assert not reactive["completed_before_failure"]
        assert reactive["downtime_s"] > live["downtime_s"]

    def test_cell_is_deterministic_in_process(self):
        first = run_evac_cell("post-copy", 30.0, **FAST_EVAC)
        second = run_evac_cell("post-copy", 30.0, **FAST_EVAC)
        assert first == second

    def test_rows_independent_of_tracing(self):
        baseline = run_evac_cell("pre-copy", 30.0, **FAST_EVAC)
        TRACER.enable()
        TRACER.reset()
        try:
            traced = run_evac_cell("pre-copy", 30.0, **FAST_EVAC)
            assert TRACER.span_count > 0  # migration spans were recorded
        finally:
            TRACER.disable()
            TRACER.reset()
        assert traced == baseline

    def test_merge_preserves_cell_order(self):
        class FakeCell:
            def __init__(self, payload):
                self.payload = payload

        payloads = [
            run_evac_cell("pre-copy", 30.0, **FAST_EVAC),
            run_evac_cell("ckpt-restart", 30.0, **FAST_EVAC),
        ]
        rows = merge_evac([FakeCell(p) for p in payloads]).rows
        assert [row["policy"] for row in rows] == ["pre-copy", "ckpt-restart"]
        assert all(row["verified"] for row in rows)

    def test_spec_enumerates_policy_times_lead(self):
        cells = EVAC_SCENARIO.build_cells()
        keys = [cell.key for cell in cells]
        assert keys == [f"evac:{policy}:45" for policy in EVAC_POLICIES]
        assert len({cell.seed for cell in cells}) == len(cells)


class TestMigScenario:
    def test_contention_slows_the_migration(self):
        quiet = run_mig_cell("pre-copy", 0, buffer_bytes=4 * MB, spec=SMALL)
        busy = run_mig_cell("pre-copy", 8, buffer_bytes=4 * MB, spec=SMALL)
        assert busy["total_s"] > quiet["total_s"]
        assert busy["downtime_s"] > quiet["downtime_s"]

    def test_post_copy_demands_cross_the_fabric(self):
        out = run_mig_cell("post-copy", 0, buffer_bytes=4 * MB, spec=SMALL)
        assert out["remote_faults"] > 0

    def test_cell_is_deterministic_in_process(self):
        first = run_mig_cell("post-copy", 8, buffer_bytes=4 * MB, spec=SMALL)
        second = run_mig_cell("post-copy", 8, buffer_bytes=4 * MB, spec=SMALL)
        assert first == second

    def test_rows_independent_of_disjoint_fabric_traffic(self):
        """Unrelated traffic on a *separate* cloud must not leak in."""
        quiet = run_mig_cell("post-copy", 0, buffer_bytes=4 * MB, spec=SMALL)
        other = Cloud(SMALL)
        stop = {"done": False}

        def noisy():
            src = other.compute_nodes[0].name
            dst = other.compute_nodes[1].name
            other.process(background_flow(other, src, dst, 64 * MB, stop), name="noise")
            yield other.env.timeout(30.0)
            stop["done"] = True

        other.run(other.process(noisy()))
        again = run_mig_cell("post-copy", 0, buffer_bytes=4 * MB, spec=SMALL)
        assert again == quiet

    def test_merge_one_row_per_flow_count(self):
        class FakeCell:
            def __init__(self, payload):
                self.payload = payload

        payloads = [
            run_mig_cell(mode, flows, buffer_bytes=4 * MB, spec=SMALL)
            for mode in ("pre-copy", "post-copy")
            for flows in (0, 8)
        ]
        rows = merge_mig([FakeCell(p) for p in payloads]).rows
        assert [row["flows"] for row in rows] == [0, 8]
        for row in rows:
            assert "pre-copy downtime_s" in row
            assert "post-copy total_s" in row

    def test_spec_enumerates_mode_times_flows(self):
        keys = [cell.key for cell in MIG_SCENARIO.build_cells()]
        assert keys[0] == "mig:pre-copy:0"
        assert len(keys) == 6


class TestWorkerDeterminism:
    def test_workers_do_not_change_migration_rows(self):
        load_all()
        config = RunConfig(
            spec=SMALL,
            overrides=(
                "evac.instances=2",
                "evac.buffer_bytes=4000000",
                "evac.lead=20",
            ),
        )
        selectors = parse_selectors(["evac:pre-copy,evac:post-copy"])
        sequential = ParallelRunner(workers=1).run(["evac"], config, selectors)
        parallel = ParallelRunner(workers=4).run(["evac"], config, selectors)
        assert [r.rows for r in sequential.results] == [r.rows for r in parallel.results]
        assert [c.payload for c in sequential.cell_results] == [
            c.payload for c in parallel.cell_results
        ]
