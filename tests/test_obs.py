"""Tests for the sim-time tracing subsystem (``repro.obs``).

Covers the tracer itself, the Chrome trace-event export, span rollups, the
trace-artifact schema validator, counter aggregation (MAX_FIELDS vs.
additive), the progress meter, and the two determinism contracts:

* the same cell traced twice produces a byte-identical artifact, and
* tracing disabled leaves experiment rows byte-identical to an untraced run.
"""

import io
import json

import pytest

from repro.cli import main
from repro.obs import (
    HISTOGRAM_QUANTILES,
    TRACER,
    Tracer,
    chrome_trace,
    exact_quantile,
    format_rollups,
    merge_rollups,
    span_rollups,
    tracing,
)
from repro.runner import (
    ProgressMeter,
    build_trace_artifact,
    load_trace_artifact,
    validate_trace_artifact,
)
from repro.runner.artifact import ArtifactError
from repro.sim.instrumentation import MAX_FIELDS, SimCounters, aggregate_counters


@pytest.fixture(autouse=True)
def _pristine_tracer():
    """Every test starts and ends with the global tracer off and empty."""
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


class TestExactQuantile:
    def test_nearest_rank_is_exact(self):
        values = sorted(float(v) for v in range(1, 101))
        assert exact_quantile(values, 0.50) == 50.0
        assert exact_quantile(values, 0.90) == 90.0
        assert exact_quantile(values, 0.99) == 99.0
        assert exact_quantile(values, 1.0) == 100.0

    def test_single_value(self):
        for q in HISTOGRAM_QUANTILES:
            assert exact_quantile([7.0], q) == 7.0

    def test_result_is_always_a_recorded_value(self):
        values = [1.0, 2.0, 1000.0]
        for q in HISTOGRAM_QUANTILES:
            assert exact_quantile(values, q) in values

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)


class TestTracer:
    def test_disabled_by_default_and_write_only(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.span_count == 0

    def test_begin_end_records_span(self):
        tracer = Tracer()
        handle = tracer.begin("ckpt", "vm-000", 1.0, cat="phase", args={"n": 1})
        tracer.end(handle, 3.5, args={"bytes": 42})
        (span,) = tracer.collect()["spans"]
        assert span["name"] == "ckpt"
        assert span["track"] == "vm-000"
        assert span["t0_s"] == 1.0
        assert span["t1_s"] == 3.5
        assert span["args"] == {"n": 1, "bytes": 42}

    def test_open_span_collects_with_null_end(self):
        tracer = Tracer()
        tracer.begin("deploy", "vm-001", 0.5)
        (span,) = tracer.collect()["spans"]
        assert span["t1_s"] is None

    def test_instants_and_gauges(self):
        tracer = Tracer()
        tracer.instant("failure", "node-003", 12.0, cat="failure")
        tracer.gauge("queue", "disk", 1.0, 2)
        tracer.gauge("queue", "disk", 2.0, 0)
        trace = tracer.collect()
        (inst,) = trace["instants"]
        assert (inst["name"], inst["track"], inst["t_s"]) == ("failure", "node-003", 12.0)
        (series,) = trace["counters"]
        assert series["name"] == "queue"
        assert series["points"] == [[1.0, 2], [2.0, 0]]

    def test_histogram_summary_has_exact_quantiles(self):
        tracer = Tracer()
        for value in (3.0, 1.0, 2.0, 4.0):
            tracer.observe("flow.bytes", value)
        summary = tracer.collect()["histograms"]["flow.bytes"]
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.0
        assert summary["p999"] == 4.0

    def test_groups_partition_the_trace(self):
        tracer = Tracer()
        tracer.begin("a", "t", 0.0)
        group = tracer.begin_group("cloud[4+2 nodes]")
        tracer.begin("b", "t", 1.0)
        trace = tracer.collect()
        assert trace["groups"] == ["run", "cloud[4+2 nodes]"]
        assert [span["group"] for span in trace["spans"]] == [0, group]

    def test_reset_keeps_enabled_flag(self):
        tracer = Tracer()
        tracer.enable()
        tracer.begin("x", "t", 0.0)
        tracer.reset()
        assert tracer.enabled
        assert tracer.span_count == 0

    def test_tracing_context_manager(self):
        assert not TRACER.enabled
        with tracing() as tracer:
            assert tracer is TRACER
            assert TRACER.enabled
            TRACER.begin("x", "t", 0.0)
        assert not TRACER.enabled
        # data survives exit for collection, until the next reset
        assert TRACER.span_count == 1


class TestChromeExport:
    @staticmethod
    def _cell(trace):
        return {"key": "fig2:BlobCR-app:4", "experiment": "fig2", "trace": trace}

    def test_span_becomes_complete_event_in_microseconds(self):
        tracer = Tracer()
        handle = tracer.begin("ckpt", "vm-000", 1.5)
        tracer.end(handle, 2.0)
        doc = chrome_trace([self._cell(tracer.collect())])
        events = {event["ph"]: event for event in doc["traceEvents"]}
        assert doc["displayTimeUnit"] == "ms"
        span = events["X"]
        assert span["ts"] == 1_500_000
        assert span["dur"] == 500_000
        assert events["M"]  # process/thread metadata present

    def test_open_span_becomes_begin_event(self):
        tracer = Tracer()
        tracer.begin("deploy", "vm-000", 0.0)
        phs = [e["ph"] for e in chrome_trace([self._cell(tracer.collect())])["traceEvents"]]
        assert "B" in phs and "X" not in phs

    def test_instants_and_counters(self):
        tracer = Tracer()
        tracer.instant("failure", "node-000", 3.0, cat="failure")
        tracer.gauge("utilization", "channel-0", 1.0, 0.5)
        events = chrome_trace([self._cell(tracer.collect())])["traceEvents"]
        (inst,) = [e for e in events if e["ph"] == "i"]
        assert inst["s"] == "t"
        assert inst["ts"] == 3_000_000
        (counter,) = [e for e in events if e["ph"] == "C"]
        assert counter["name"] == "channel-0:utilization"
        assert counter["args"] == {"utilization": 0.5}

    def test_groups_get_distinct_pids_with_names(self):
        tracer = Tracer()
        tracer.begin("a", "t", 0.0)
        tracer.begin_group("cloud-b")
        tracer.begin("b", "t", 0.0)
        events = chrome_trace([self._cell(tracer.collect())])["traceEvents"]
        names = [e for e in events if e["name"] == "process_name"]
        assert [e["args"]["name"] for e in names] == [
            "fig2:BlobCR-app:4 · run",
            "fig2:BlobCR-app:4 · cloud-b",
        ]
        spans = [e for e in events if e["ph"] in ("X", "B")]
        assert spans[0]["pid"] != spans[1]["pid"]

    def test_tracks_get_stable_tids_per_process(self):
        tracer = Tracer()
        tracer.end(tracer.begin("a", "vm-000", 0.0), 1.0)
        tracer.end(tracer.begin("b", "vm-001", 0.0), 1.0)
        tracer.end(tracer.begin("c", "vm-000", 2.0), 3.0)
        events = chrome_trace([self._cell(tracer.collect())])["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert spans[0]["tid"] == spans[2]["tid"]  # same track, same tid
        assert spans[0]["tid"] != spans[1]["tid"]


class TestRollups:
    def test_only_closed_spans_counted_and_sorted_by_total(self):
        tracer = Tracer()
        tracer.end(tracer.begin("short", "t", 0.0), 1.0)
        tracer.end(tracer.begin("long", "t", 0.0), 5.0)
        tracer.end(tracer.begin("long", "t", 5.0), 7.0)
        tracer.begin("open", "t", 0.0)
        rollups = span_rollups(tracer.collect())
        assert list(rollups) == ["long", "short"]
        assert rollups["long"] == {"count": 2, "total_sim_s": 7.0, "max_sim_s": 5.0}

    def test_merge_folds_counts_totals_and_max(self):
        one = {"a": {"count": 1, "total_sim_s": 2.0, "max_sim_s": 2.0}}
        two = {
            "a": {"count": 2, "total_sim_s": 1.0, "max_sim_s": 0.6},
            "b": {"count": 1, "total_sim_s": 9.0, "max_sim_s": 9.0},
        }
        merged = merge_rollups([one, two])
        assert list(merged) == ["b", "a"]
        assert merged["a"] == {"count": 3, "total_sim_s": 3.0, "max_sim_s": 2.0}

    def test_format_rollups_table(self):
        text = format_rollups({"ckpt": {"count": 2, "total_sim_s": 3.5, "max_sim_s": 2.0}})
        assert "span" in text and "ckpt" in text and "3.500" in text
        assert "(no closed spans recorded)" in format_rollups({})


class TestTraceArtifactValidation:
    @staticmethod
    def _document(**cell_overrides):
        trace = {
            "groups": ["run"],
            "spans": [],
            "instants": [],
            "counters": [],
            "histograms": {},
        }
        cell = {
            "key": "fig7:off",
            "experiment": "fig7",
            "sim_time_s": 1.0,
            "trace": trace,
            "rollups": {},
        }
        cell.update(cell_overrides)
        return build_trace_artifact(experiments=["fig7"], cells=[cell])

    def test_valid_document_passes(self):
        document = self._document()
        assert validate_trace_artifact(document) is document

    def test_wrong_schema_rejected(self):
        document = self._document()
        document["schema"] = "blobcr-repro/bench-artifact"
        with pytest.raises(ArtifactError, match="not a blobcr-repro/trace-artifact"):
            validate_trace_artifact(document)

    @pytest.mark.parametrize("version", [0, 2, "1", None])
    def test_unknown_version_rejected(self, version):
        document = self._document()
        document["schema_version"] = version
        with pytest.raises(ArtifactError, match="schema_version"):
            validate_trace_artifact(document)

    @pytest.mark.parametrize("section", ["run", "environment", "cells"])
    def test_missing_section_rejected(self, section):
        document = self._document()
        del document[section]
        with pytest.raises(ArtifactError, match=section):
            validate_trace_artifact(document)

    def test_cell_missing_trace_rejected(self):
        document = self._document()
        del document["cells"][0]["trace"]
        with pytest.raises(ArtifactError, match="'trace'"):
            validate_trace_artifact(document)

    def test_trace_missing_spans_rejected(self):
        document = self._document()
        del document["cells"][0]["trace"]["spans"]
        with pytest.raises(ArtifactError, match="trace.spans"):
            validate_trace_artifact(document)

    def test_malformed_span_rejected(self):
        document = self._document()
        document["cells"][0]["trace"]["spans"].append({"name": "ckpt"})  # no t0_s
        with pytest.raises(ArtifactError, match="malformed span"):
            validate_trace_artifact(document)

    def test_not_an_object_rejected(self):
        with pytest.raises(ArtifactError, match="JSON object"):
            validate_trace_artifact([1, 2, 3])

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_trace_artifact(str(path))


class TestAggregateCounters:
    def test_additive_fields_sum(self):
        a = SimCounters(events_popped=10, bw_settles=2).as_dict()
        b = SimCounters(events_popped=5, bw_settles=1).as_dict()
        total = aggregate_counters([a, b])
        assert total["events_popped"] == 15
        assert total["bw_settles"] == 3

    def test_max_fields_take_maximum(self):
        assert "bw_max_component_flows" in MAX_FIELDS
        a = SimCounters(bw_max_component_flows=24).as_dict()
        b = SimCounters(bw_max_component_flows=8).as_dict()
        assert aggregate_counters([a, b])["bw_max_component_flows"] == 24

    def test_max_fields_derived_from_field_metadata(self):
        from dataclasses import fields

        declared = {
            spec.name
            for spec in fields(SimCounters)
            if spec.metadata.get("aggregate") == "max"
        }
        assert MAX_FIELDS == declared

    def test_unknown_keys_seed_instead_of_raising(self):
        a = {"events_popped": 1, "future_counter": 7}
        b = {"events_popped": 2, "future_counter": 5}
        total = aggregate_counters([a, b])
        assert total["future_counter"] == 12
        assert total["events_popped"] == 3

    def test_empty_input_yields_zeroed_block(self):
        from dataclasses import fields

        total = aggregate_counters([])
        assert set(total) == {spec.name for spec in fields(SimCounters)}
        assert all(value == 0 for value in total.values())


class TestProgressMeter:
    class _Result:
        def __init__(self, key, wall, sim):
            self.key = key
            self.wall_time_s = wall
            self.sim_time_s = sim

    def test_reports_done_total_and_eta(self):
        stream = io.StringIO()
        meter = ProgressMeter(workers=2, stream=stream)
        meter(1, 4, self._Result("fig7:off", 2.0, 30.0))
        line = stream.getvalue()
        assert line.startswith("[1/4] fig7:off wall=2.00s sim=30.0s eta=")
        # one cell done at 2.0s wall, 3 remaining over 2 workers -> 3s
        assert meter.eta_s(3) == 3.0

    def test_last_cell_has_no_eta(self):
        stream = io.StringIO()
        meter = ProgressMeter(workers=1, stream=stream)
        meter(1, 1, self._Result("fig7:off", 1.0, 5.0))
        assert "eta=" not in stream.getvalue()

    def test_eta_formatting(self):
        assert ProgressMeter._format_eta(42.0) == "42s"
        assert ProgressMeter._format_eta(90.0) == "1.5m"
        assert ProgressMeter._format_eta(5400.0) == "1.5h"


CELL = "fig2:BlobCR-app:4:50MB"


class TestTraceDeterminism:
    def test_same_cell_twice_is_byte_identical(self, tmp_path, capsys):
        # the recorded argv is part of the document, so both runs use the
        # exact same command line (including the output paths)
        artifact = tmp_path / "artifact.json"
        chrome = tmp_path / "chrome.json"
        argv = [
            "trace",
            "--cells",
            CELL,
            "--no-progress",
            "--trace-artifact",
            str(artifact),
            "--chrome",
            str(chrome),
        ]
        assert main(argv) == 0
        first = (artifact.read_bytes(), chrome.read_bytes())
        assert main(argv) == 0
        second = (artifact.read_bytes(), chrome.read_bytes())
        capsys.readouterr()
        assert first == second

    def test_artifact_is_valid_and_carries_spans(self, tmp_path, capsys):
        artifact = tmp_path / "artifact.json"
        chrome = tmp_path / "chrome.json"
        # positional selector form: `blobcr-repro trace fig2:...`
        argv = [
            "trace",
            CELL,
            "--no-progress",
            "--trace-artifact",
            str(artifact),
            "--chrome",
            str(chrome),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "traced 1 cell(s)" in out
        assert "sim-time span rollups" in out
        document = load_trace_artifact(str(artifact))
        (cell,) = document["cells"]
        assert cell["key"] == CELL
        names = {span["name"] for span in cell["trace"]["spans"]}
        assert {"deploy", "ckpt", "vm-suspend", "vdisk-snapshot", "commit"} <= names
        assert cell["trace"]["histograms"]["flow.bytes"]["count"] > 0
        assert cell["rollups"]
        payload = json.loads((tmp_path / "chrome.json").read_text())
        phs = {event["ph"] for event in payload["traceEvents"]}
        assert "X" in phs and "M" in phs and "C" in phs

    def test_rows_identical_with_tracing_off(self, capsys):
        # default runner path never touches the tracer: rows must be
        # byte-identical to the seed behaviour
        argv = ["--cells", CELL, "--json", "-", "--no-progress"]
        assert main(argv) == 0
        untraced = capsys.readouterr().out
        with tracing():
            pass  # enable/disable cycle must leave the default path untouched
        assert main(argv) == 0
        assert capsys.readouterr().out == untraced

    def test_rows_identical_with_tracing_on(self, capsys):
        # write-only contract: tracing enabled cannot change any result
        argv = ["--cells", CELL, "--json", "-", "--no-progress"]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        TRACER.enable()
        try:
            assert main(argv) == 0
        finally:
            TRACER.disable()
        assert capsys.readouterr().out == baseline


class TestSessionTrace:
    def test_trace_report(self):
        from repro.api import Session, TraceReport

        report = Session().trace("fig7", cells=["fig7:off"])
        assert isinstance(report, TraceReport)
        assert report.cell_keys == ("fig7:off",)
        assert report.artifact["schema"] == "blobcr-repro/trace-artifact"
        assert report.rollups
        assert report.chrome()["traceEvents"]

    def test_unknown_scenario_rejected(self):
        from repro.api import Session
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Session().trace("not-a-scenario")
