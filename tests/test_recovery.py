"""End-to-end recovery integration tests.

The paper's contract: under the fail-stop model, losing a compute node
mid-computation or mid-checkpoint must roll the application back to the most
recent *globally consistent* checkpoint, restart every instance on live
nodes and restore exactly that checkpoint's state -- deterministically.
These tests exercise the full loop for each Deployment strategy (BlobCR and
both qcow2 baselines) through the fault-tolerance driver and through a
direct rollback scenario that pins down which epoch survives.
"""

import pytest

from repro.apps.synthetic import STATE_PATH_TEMPLATE, SyntheticBenchmark
from repro.baselines import Qcow2DiskDeployment, Qcow2FullDeployment
from repro.cluster import Cloud, FailureInjector
from repro.core import BlobCRDeployment
from repro.core.migration import BlobCRMigrateDeployment
from repro.scenarios.fault_tolerance import (
    FaultToleranceDriver,
    fault_tolerant_cluster,
    run_fault_tolerance_cell,
)
from repro.scenarios.spec import FailurePlan
from repro.util.bytesource import SyntheticBytes
from repro.util.config import GRAPHENE
from repro.util.errors import FailureInjected
from repro.util.units import MB

SMALL = fault_tolerant_cluster(GRAPHENE.scaled(compute_nodes=6, service_nodes=3))

DEPLOYMENTS = [
    ("BlobCR", BlobCRDeployment, "app"),
    ("qcow2-disk", Qcow2DiskDeployment, "app"),
    ("qcow2-full", Qcow2FullDeployment, "full"),
]

#: driver geometry shared by the phase-targeted tests
PERIODS, PERIOD_S = 2, 40.0


def _drive(cls, level, offsets):
    """Run the driver with failures at explicit offsets from steady state."""
    deployment = cls(Cloud(SMALL))
    driver = FaultToleranceDriver(
        deployment,
        buffer_bytes=4 * MB,
        plan=FailurePlan(at_times=tuple(offsets)),
        instances=4,
        periods=PERIODS,
        period_s=PERIOD_S,
        level=level,
        injector_seed=("recovery-test",) + tuple(offsets),
    )
    return driver, driver.run()


class TestRecoveryMidCompute:
    @pytest.mark.parametrize("name,cls,level", DEPLOYMENTS)
    def test_failure_during_compute_rolls_back(self, name, cls, level):
        # Offset 20 s lands in the middle of the first 40 s compute period.
        driver, stats = _drive(cls, level, offsets=(20.0,))
        assert stats["failures"] == 1
        assert stats["rollbacks"] == 1
        assert stats["restored_ok"]
        assert not stats["unrecoverable"]
        assert stats["completed_periods"] == PERIODS
        # The failure struck during computation, before the period's
        # checkpoint began.
        event = driver.injector.history[0]
        assert event.time - stats["steady_state_at"] < PERIOD_S
        # Work since the durable anchor was lost and redone.
        assert stats["lost_work_s"] >= 20.0
        assert stats["rollback_time_s"] > 0
        # Every instance ends on a live node.
        for instance in driver.deployment.instances:
            assert driver.cloud.node(instance.node_name).alive

    @pytest.mark.parametrize("name,cls,level", DEPLOYMENTS)
    def test_failure_during_checkpoint_rolls_back(self, name, cls, level):
        # The first period's checkpoint starts exactly PERIOD_S after steady
        # state; offset PERIOD_S + 0.4 lands inside the in-flight checkpoint.
        driver, stats = _drive(cls, level, offsets=(PERIOD_S + 0.4,))
        assert stats["failures"] == 1
        assert stats["rollbacks"] == 1
        assert stats["restored_ok"]
        assert stats["completed_periods"] == PERIODS
        event = driver.injector.history[0]
        assert event.time - stats["steady_state_at"] >= PERIOD_S
        # The interrupted checkpoint is not durable: the run rolled past it
        # and still had to redo the whole period.
        assert stats["lost_work_s"] >= PERIOD_S


class TestRecoveryDeterminism:
    @pytest.mark.parametrize("name,cls,level", DEPLOYMENTS)
    def test_identical_runs_produce_identical_timings(self, name, cls, level):
        _, first = _drive(cls, level, offsets=(20.0,))
        _, second = _drive(cls, level, offsets=(20.0,))
        assert first == second

    def test_cell_function_is_deterministic(self):
        first = run_fault_tolerance_cell(
            "qcow2-disk-app", 150.0, instances=4, periods=2, spec=SMALL
        )
        second = run_fault_tolerance_cell(
            "qcow2-disk-app", 150.0, instances=4, periods=2, spec=SMALL
        )
        assert first == second
        assert first["failures"] >= 1
        assert first["rollbacks"] >= 1
        assert first["restored_ok"]


class TestRollbackTarget:
    """The restart restores the *most recent* durable checkpoint's state."""

    @pytest.mark.parametrize("name,cls,level", [d for d in DEPLOYMENTS if d[2] == "app"])
    def test_rollback_restores_last_durable_epoch(self, name, cls, level):
        cloud = Cloud(SMALL)
        deployment = cls(cloud)
        bench = SyntheticBenchmark(deployment, 4 * MB)
        injector = FailureInjector(cloud, seed="rollback-target")
        out = {}

        def scenario():
            yield from deployment.deploy(4, processes_per_instance=1)
            # Two durable checkpoints: epoch 1 then epoch 2.
            bench.fill_buffers()
            yield from bench.checkpoint_app_level()
            bench.fill_buffers()
            second = yield from bench.checkpoint_app_level()
            # Crash a host while epoch-3 state exists only in RAM/guest FS.
            bench.fill_buffers()
            victim = deployment.instances[1].node_name
            injector.fail_at(cloud.now + 5.0, victim)
            try:
                yield cloud.env.timeout(10.0)
                dead = [
                    inst for inst in deployment.instances
                    if not cloud.node(inst.node_name).alive
                ]
                assert dead, "the injected failure must kill a hosting node"
                raise FailureInjected("host died", node=dead[0].node_name)
            except FailureInjected:
                yield from bench.restart(second)
            out["epoch2_ok"] = bench.verify_restored_state(epoch=2)
            # The uncheckpointed epoch-3 dump did not survive the rollback.
            path3 = STATE_PATH_TEMPLATE.format(epoch=3)
            out["epoch3_gone"] = all(
                not inst.vm.filesystem.exists(path3)
                for inst in deployment.instances
            )

        cloud.run(cloud.process(scenario()))
        assert out["epoch2_ok"]
        assert out["epoch3_gone"]


class TestMigrationFailurePaths:
    """Source death mid-migration: roll back to durable state or propagate.

    The contract of ``blobcr-migrate``: whatever the migration already made
    durable (the anchor checkpoint plus every *completed* pre-copy round)
    survives the source's death -- the instance restarts on the destination
    from exactly that state, and with no durable version at all the failure
    propagates like any other fail-stop crash.
    """

    def _migrate_with_failure(self, fail_time, mode="pre-copy", demand=()):
        """One deploy/checkpoint/dirty/migrate run, optionally killing the
        source at the given absolute simulated time."""
        cloud = Cloud(SMALL)
        deployment = BlobCRMigrateDeployment(cloud)
        bench = SyntheticBenchmark(deployment, 4 * MB)
        injector = FailureInjector(cloud, seed="migration-window")
        out = {}

        def scenario():
            yield from deployment.deploy(2, processes_per_instance=1)
            bench.fill_buffers()
            yield from bench.checkpoint_app_level()
            instance = deployment.instances[0]
            hot = SyntheticBytes("window-dirty", 8 * MB)
            yield from deployment.guest_write_and_sync(instance, "/data/hot.dat", hot)
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            if fail_time is not None:
                injector.fail_at(fail_time, instance.node_name)
            result = yield from deployment.migrate_instance(
                instance, target, mode=mode, demand_paths=demand
            )
            out["result"] = result
            out["target"] = target

        cloud.run(cloud.process(scenario()))
        return deployment, bench, out

    def test_source_death_mid_precopy_round_rolls_back(self):
        cloud = Cloud(SMALL)
        deployment = BlobCRMigrateDeployment(cloud)
        bench = SyntheticBenchmark(deployment, 4 * MB)
        injector = FailureInjector(cloud, seed="migration-midround")
        out = {}

        def scenario():
            yield from deployment.deploy(2, processes_per_instance=1)
            bench.fill_buffers()
            yield from bench.checkpoint_app_level()
            instance = deployment.instances[0]
            # A large dirty set makes the first COMMIT round long enough
            # that the scheduled failure is guaranteed to land inside it.
            big = SyntheticBytes("midround-dirty", 96 * MB)
            yield from deployment.guest_write_and_sync(instance, "/data/big.dat", big)
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            injector.fail_at(cloud.now + 0.05, instance.node_name)
            result = yield from deployment.migrate_instance(instance, target)
            out["result"] = result
            out["target"] = target

        cloud.run(cloud.process(scenario()))
        result = out["result"]
        assert result.rolled_back
        assert result.downtime_s > 0
        instance = deployment.instances[0]
        assert instance.node_name == out["target"]
        assert instance.vm.is_running
        # Round 1 never completed, so the rollback target is the anchor
        # checkpoint: epoch-1 state survives, the in-flight dirty data is lost.
        assert bench.verify_restored_state(epoch=1)
        assert not instance.vm.filesystem.exists("/data/big.dat")
        # The sibling instance was never touched.
        sibling = deployment.instances[1]
        assert sibling.vm.is_running
        assert cloud.node(sibling.node_name).alive

    def test_source_death_mid_switchover_keeps_completed_rounds(self):
        # Clean run first: the deterministic timeline tells us exactly where
        # the suspension window lies, so the replay can kill the source
        # inside it.
        _deployment, _bench, clean = self._migrate_with_failure(None)
        reference = clean["result"]
        suspended_at = reference.finished_at - reference.downtime_s
        fail_time = suspended_at + reference.downtime_s * 0.25
        deployment, bench, out = self._migrate_with_failure(fail_time)
        result = out["result"]
        assert result.rolled_back
        instance = deployment.instances[0]
        assert instance.node_name == out["target"]
        assert instance.vm.is_running
        # Round 1 completed (and committed) before the switchover began, so
        # the destination restarts from state that *includes* the hot file.
        assert instance.vm.filesystem.exists("/data/hot.dat")
        assert bench.verify_restored_state(epoch=1)

    def test_source_death_during_postcopy_drain_rolls_back(self):
        _deployment, _bench, clean = self._migrate_with_failure(
            None, mode="post-copy", demand=("/data/hot.dat",)
        )
        reference = clean["result"]
        # Post-copy suspends immediately, so the drain phase (demand faults
        # plus the prefetch sweep) spans resume .. finished.
        resumed_at = reference.started_at + reference.downtime_s
        fail_time = (resumed_at + reference.finished_at) / 2
        assert fail_time > resumed_at
        deployment, bench, out = self._migrate_with_failure(
            fail_time, mode="post-copy", demand=("/data/hot.dat",)
        )
        result = out["result"]
        assert result.rolled_back
        instance = deployment.instances[0]
        assert instance.node_name == out["target"]
        assert instance.vm.is_running
        # Post-copy commits nothing: the open epoch died with the source and
        # only the anchor checkpoint survives.
        assert bench.verify_restored_state(epoch=1)
        assert not instance.vm.filesystem.exists("/data/hot.dat")

    def test_source_death_with_no_durable_version_propagates(self):
        cloud = Cloud(SMALL)
        deployment = BlobCRMigrateDeployment(cloud)
        bench = SyntheticBenchmark(deployment, 4 * MB)
        injector = FailureInjector(cloud, seed="migration-nodurable")

        def scenario():
            yield from deployment.deploy(1, processes_per_instance=1)
            bench.fill_buffers()
            instance = deployment.instances[0]
            big = SyntheticBytes("nodurable-dirty", 64 * MB)
            yield from deployment.guest_write_and_sync(instance, "/data/big.dat", big)
            target = cloud.reserve_nodes(1, owner=deployment)[0]
            injector.fail_at(cloud.now + 0.05, instance.node_name)
            yield from deployment.migrate_instance(instance, target)

        with pytest.raises(FailureInjected, match="durable"):
            cloud.run(cloud.process(scenario()))
        assert deployment.migrations == []

    def test_unrecoverable_failure_interrupts_sibling_migrations(self):
        cloud = Cloud(SMALL)
        deployment = BlobCRMigrateDeployment(cloud)
        bench = SyntheticBenchmark(deployment, 4 * MB)
        injector = FailureInjector(cloud, seed="migration-siblings")

        def scenario():
            yield from deployment.deploy(2, processes_per_instance=1)
            bench.fill_buffers()
            for index, instance in enumerate(deployment.instances):
                big = SyntheticBytes(("sibling-dirty", index), 64 * MB)
                yield from deployment.guest_write_and_sync(
                    instance, "/data/big.dat", big
                )
            targets = cloud.reserve_nodes(2, owner=deployment)
            mapping = {
                inst.instance_id: target
                for inst, target in zip(deployment.instances, targets)
            }
            injector.fail_at(
                cloud.now + 0.05, deployment.instances[0].node_name
            )
            yield from deployment.migrate_all(mapping)

        # No checkpoint ever ran: the first instance's failure cannot be
        # rolled back, and it takes the concurrent sibling migration down
        # with it before propagating.
        with pytest.raises(FailureInjected):
            cloud.run(cloud.process(scenario()))
        assert deployment.migrations == []
