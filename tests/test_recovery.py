"""End-to-end recovery integration tests.

The paper's contract: under the fail-stop model, losing a compute node
mid-computation or mid-checkpoint must roll the application back to the most
recent *globally consistent* checkpoint, restart every instance on live
nodes and restore exactly that checkpoint's state -- deterministically.
These tests exercise the full loop for each Deployment strategy (BlobCR and
both qcow2 baselines) through the fault-tolerance driver and through a
direct rollback scenario that pins down which epoch survives.
"""

import pytest

from repro.apps.synthetic import STATE_PATH_TEMPLATE, SyntheticBenchmark
from repro.baselines import Qcow2DiskDeployment, Qcow2FullDeployment
from repro.cluster import Cloud, FailureInjector
from repro.core import BlobCRDeployment
from repro.scenarios.fault_tolerance import (
    FaultToleranceDriver,
    fault_tolerant_cluster,
    run_fault_tolerance_cell,
)
from repro.scenarios.spec import FailurePlan
from repro.util.config import GRAPHENE
from repro.util.errors import FailureInjected
from repro.util.units import MB

SMALL = fault_tolerant_cluster(GRAPHENE.scaled(compute_nodes=6, service_nodes=3))

DEPLOYMENTS = [
    ("BlobCR", BlobCRDeployment, "app"),
    ("qcow2-disk", Qcow2DiskDeployment, "app"),
    ("qcow2-full", Qcow2FullDeployment, "full"),
]

#: driver geometry shared by the phase-targeted tests
PERIODS, PERIOD_S = 2, 40.0


def _drive(cls, level, offsets):
    """Run the driver with failures at explicit offsets from steady state."""
    deployment = cls(Cloud(SMALL))
    driver = FaultToleranceDriver(
        deployment,
        buffer_bytes=4 * MB,
        plan=FailurePlan(at_times=tuple(offsets)),
        instances=4,
        periods=PERIODS,
        period_s=PERIOD_S,
        level=level,
        injector_seed=("recovery-test",) + tuple(offsets),
    )
    return driver, driver.run()


class TestRecoveryMidCompute:
    @pytest.mark.parametrize("name,cls,level", DEPLOYMENTS)
    def test_failure_during_compute_rolls_back(self, name, cls, level):
        # Offset 20 s lands in the middle of the first 40 s compute period.
        driver, stats = _drive(cls, level, offsets=(20.0,))
        assert stats["failures"] == 1
        assert stats["rollbacks"] == 1
        assert stats["restored_ok"]
        assert not stats["unrecoverable"]
        assert stats["completed_periods"] == PERIODS
        # The failure struck during computation, before the period's
        # checkpoint began.
        event = driver.injector.history[0]
        assert event.time - stats["steady_state_at"] < PERIOD_S
        # Work since the durable anchor was lost and redone.
        assert stats["lost_work_s"] >= 20.0
        assert stats["rollback_time_s"] > 0
        # Every instance ends on a live node.
        for instance in driver.deployment.instances:
            assert driver.cloud.node(instance.node_name).alive

    @pytest.mark.parametrize("name,cls,level", DEPLOYMENTS)
    def test_failure_during_checkpoint_rolls_back(self, name, cls, level):
        # The first period's checkpoint starts exactly PERIOD_S after steady
        # state; offset PERIOD_S + 0.4 lands inside the in-flight checkpoint.
        driver, stats = _drive(cls, level, offsets=(PERIOD_S + 0.4,))
        assert stats["failures"] == 1
        assert stats["rollbacks"] == 1
        assert stats["restored_ok"]
        assert stats["completed_periods"] == PERIODS
        event = driver.injector.history[0]
        assert event.time - stats["steady_state_at"] >= PERIOD_S
        # The interrupted checkpoint is not durable: the run rolled past it
        # and still had to redo the whole period.
        assert stats["lost_work_s"] >= PERIOD_S


class TestRecoveryDeterminism:
    @pytest.mark.parametrize("name,cls,level", DEPLOYMENTS)
    def test_identical_runs_produce_identical_timings(self, name, cls, level):
        _, first = _drive(cls, level, offsets=(20.0,))
        _, second = _drive(cls, level, offsets=(20.0,))
        assert first == second

    def test_cell_function_is_deterministic(self):
        first = run_fault_tolerance_cell(
            "qcow2-disk-app", 150.0, instances=4, periods=2, spec=SMALL
        )
        second = run_fault_tolerance_cell(
            "qcow2-disk-app", 150.0, instances=4, periods=2, spec=SMALL
        )
        assert first == second
        assert first["failures"] >= 1
        assert first["rollbacks"] >= 1
        assert first["restored_ok"]


class TestRollbackTarget:
    """The restart restores the *most recent* durable checkpoint's state."""

    @pytest.mark.parametrize("name,cls,level", [d for d in DEPLOYMENTS if d[2] == "app"])
    def test_rollback_restores_last_durable_epoch(self, name, cls, level):
        cloud = Cloud(SMALL)
        deployment = cls(cloud)
        bench = SyntheticBenchmark(deployment, 4 * MB)
        injector = FailureInjector(cloud, seed="rollback-target")
        out = {}

        def scenario():
            yield from deployment.deploy(4, processes_per_instance=1)
            # Two durable checkpoints: epoch 1 then epoch 2.
            bench.fill_buffers()
            yield from bench.checkpoint_app_level()
            bench.fill_buffers()
            second = yield from bench.checkpoint_app_level()
            # Crash a host while epoch-3 state exists only in RAM/guest FS.
            bench.fill_buffers()
            victim = deployment.instances[1].node_name
            injector.fail_at(cloud.now + 5.0, victim)
            try:
                yield cloud.env.timeout(10.0)
                dead = [
                    inst for inst in deployment.instances
                    if not cloud.node(inst.node_name).alive
                ]
                assert dead, "the injected failure must kill a hosting node"
                raise FailureInjected("host died", node=dead[0].node_name)
            except FailureInjected:
                yield from bench.restart(second)
            out["epoch2_ok"] = bench.verify_restored_state(epoch=2)
            # The uncheckpointed epoch-3 dump did not survive the rollback.
            path3 = STATE_PATH_TEMPLATE.format(epoch=3)
            out["epoch3_gone"] = all(
                not inst.vm.filesystem.exists(path3)
                for inst in deployment.instances
            )

        cloud.run(cloud.process(scenario()))
        assert out["epoch2_ok"]
        assert out["epoch3_gone"]
