"""Tests for the registry-driven parallel runner subsystem."""

import copy

import pytest

from repro.experiments.fig2_checkpoint import fig2_cells
from repro.scenarios.workloads import run_synthetic_scenario
from repro.runner import (
    ArtifactError,
    ParallelRunner,
    RunConfig,
    build_artifact,
    build_profile_artifact,
    experiment_names,
    get_experiment,
    load_all,
    load_artifact,
    load_profile_artifact,
    parse_selectors,
    validate_artifact,
    validate_profile_artifact,
    write_artifact,
    write_profile_artifact,
)
from repro.runner.cells import run_cells_inline
from repro.runner.regression import (
    check_determinism,
    check_regression,
    check_speedup,
    speedup,
)
from repro.runner.select import filter_cells
from repro.util.config import GRAPHENE
from repro.util.errors import ConfigurationError
from repro.util.units import MB

SMALL = GRAPHENE.scaled(compute_nodes=6, service_nodes=3)

CANONICAL = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "ft",
    "scale",
    "contention",
    "mtc",
    "evac",
    "mig",
]


@pytest.fixture(scope="module")
def fig7_report():
    """One sequential fig7 run, shared by the artifact/regression tests."""
    load_all()
    return ParallelRunner(workers=1).run(["fig7"], RunConfig())


@pytest.fixture(scope="module")
def fig7_artifact(fig7_report):
    return build_artifact(fig7_report, argv=["fig7"])


class TestRegistry:
    def test_load_all_registers_canonical_order(self):
        assert load_all() == CANONICAL
        assert experiment_names() == CANONICAL

    def test_unknown_experiment_raises(self):
        load_all()
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("fig99")

    def test_paper_scale_changes_enumeration(self):
        load_all()
        reduced = get_experiment("fig2").enumerate_cells(RunConfig(paper_scale=False))
        paper = get_experiment("fig2").enumerate_cells(RunConfig(paper_scale=True))
        assert len(paper) > len(reduced)
        # 2 buffers x 3 scale points x 5 approaches at the reduced scale
        assert len(reduced) == 30


class TestCellsAndSelectors:
    def test_cell_keys_and_seeds_are_stable(self):
        cells = fig2_cells(scale_points=(4,), buffer_sizes=(2 * MB,), spec=SMALL)
        assert [c.key for c in cells] == [
            "fig2:BlobCR-app:4:2MB",
            "fig2:qcow2-disk-app:4:2MB",
            "fig2:BlobCR-blcr:4:2MB",
            "fig2:qcow2-disk-blcr:4:2MB",
            "fig2:qcow2-full:4:2MB",
        ]
        seeds = [c.seed for c in cells]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [c.seed for c in fig2_cells(scale_points=(4,), buffer_sizes=(2 * MB,))]

    def test_parse_selectors_commas_and_repeats(self):
        selectors = parse_selectors(["fig2:BlobCR-app,fig7", "fig6:BlobCR-app:16"])
        assert [s.text for s in selectors] == ["fig2:BlobCR-app", "fig7", "fig6:BlobCR-app:16"]
        assert selectors[0].experiment == "fig2"
        assert selectors[0].parts == ("BlobCR-app",)

    def test_filter_cells_prefix_matching(self):
        cells = fig2_cells(scale_points=(4, 12), buffer_sizes=(2 * MB, 4 * MB), spec=SMALL)
        kept = filter_cells(cells, parse_selectors(["fig2:BlobCR-app:12"]))
        assert [c.key for c in kept] == ["fig2:BlobCR-app:12:2MB", "fig2:BlobCR-app:12:4MB"]
        # no selectors = keep everything
        assert filter_cells(cells, []) == list(cells)

    def test_unknown_cell_selector_raises(self):
        cells = fig2_cells(scale_points=(4,), buffer_sizes=(2 * MB,), spec=SMALL)
        with pytest.raises(ConfigurationError, match="unknown cell selector"):
            filter_cells(cells, parse_selectors(["fig2:BlobCR-app:999"]))


class TestDeterminism:
    def test_scenario_is_independent_of_prior_runs(self):
        """Regression test: guest pids must not leak state across scenarios.

        The BLCR context-file header embeds the pid, so a host-global pid
        counter made the second identical scenario in one interpreter differ
        from the first by a few bytes (and hence a few milliseconds).
        """
        first = run_synthetic_scenario(
            "qcow2-disk-blcr", 2, 2 * MB, spec=SMALL, include_restart=False
        )
        second = run_synthetic_scenario(
            "qcow2-disk-blcr", 2, 2 * MB, spec=SMALL, include_restart=False
        )
        assert first.checkpoint_time == second.checkpoint_time
        assert first.snapshot_bytes_per_instance == second.snapshot_bytes_per_instance

    def test_workers_do_not_change_rows(self):
        load_all()
        selectors = parse_selectors(["table1:BlobCR-app,table1:qcow2-disk-app"])
        sequential = ParallelRunner(workers=1).run(["table1"], RunConfig(), selectors)
        parallel = ParallelRunner(workers=2).run(["table1"], RunConfig(), selectors)
        assert [r.rows for r in sequential.results] == [r.rows for r in parallel.results]
        assert [c.key for c in sequential.cell_results] == [
            c.key for c in parallel.cell_results
        ]

    def test_progress_callback_sees_every_cell(self):
        load_all()
        seen = []
        runner = ParallelRunner(
            workers=2, progress=lambda done, total, result: seen.append((done, total))
        )
        report = runner.run(["fig7"], RunConfig(), parse_selectors(["fig7:off,fig7:dedup"]))
        assert len(report.cell_results) == 2
        assert sorted(seen) == [(1, 2), (2, 2)]

    def test_merged_subset_keeps_canonical_columns(self):
        cells = fig2_cells(scale_points=(4,), buffer_sizes=(2 * MB,), spec=SMALL)
        subset = filter_cells(cells, parse_selectors(["fig2:BlobCR-app"]))
        result = get_experiment("fig2").merge(run_cells_inline(subset))
        assert result.rows == [
            {
                "buffer_MB": 2,
                "processes": 4,
                "BlobCR-app": result.rows[0]["BlobCR-app"],
            }
        ]
        assert result.rows[0]["BlobCR-app"] > 0


class TestArtifact:
    def test_round_trip(self, tmp_path, fig7_report, fig7_artifact):
        path = tmp_path / "artifact.json"
        write_artifact(str(path), fig7_artifact)
        loaded = load_artifact(str(path))
        assert loaded == validate_artifact(loaded)
        assert loaded["run"]["workers"] == 1
        assert loaded["run"]["cells"] == 3
        assert [c["key"] for c in loaded["cells"]] == ["fig7:off", "fig7:dedup", "fig7:zlib"]
        assert loaded["experiments"]["fig7"]["rows"] == fig7_report.results[0].rows
        assert loaded["calibration"]["spin_time_s"] > 0
        assert all(c["wall_time_s"] >= 0 for c in loaded["cells"])

    def test_validate_rejects_foreign_documents(self, fig7_artifact):
        with pytest.raises(ArtifactError, match="schema"):
            validate_artifact({"schema": "something-else"})
        with pytest.raises(ArtifactError, match="JSON object"):
            validate_artifact(["not", "a", "dict"])
        broken = copy.deepcopy(fig7_artifact)
        broken["schema_version"] = 999
        with pytest.raises(ArtifactError, match="schema_version"):
            validate_artifact(broken)
        missing = copy.deepcopy(fig7_artifact)
        del missing["calibration"]
        with pytest.raises(ArtifactError, match="calibration"):
            validate_artifact(missing)

    def test_load_rejects_missing_or_invalid_files(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(str(bad))


class TestProfileArtifact:
    @pytest.fixture()
    def profile_document(self):
        return build_profile_artifact(
            experiments=["fig7"],
            cells=[
                {
                    "key": "fig7:off",
                    "experiment": "fig7",
                    "wall_time_s": 0.5,
                    "sim_time_s": 12.0,
                    "counters": {"events_popped": 100, "bw_max_component_flows": 3},
                },
                {
                    "key": "fig7:zlib",
                    "experiment": "fig7",
                    "wall_time_s": 0.7,
                    "sim_time_s": 13.0,
                    "counters": {"events_popped": 50, "bw_max_component_flows": 7},
                },
            ],
            hotspots=[
                {"function": "repro/x.py:1(f)", "ncalls": 10, "tottime_s": 0.1, "cumtime_s": 0.2}
            ],
            wall_time_s=1.25,
            argv=["profile", "fig7"],
            calibrate=False,
        )

    def test_round_trip_and_aggregation(self, tmp_path, profile_document):
        path = tmp_path / "profile.json"
        write_profile_artifact(str(path), profile_document)
        loaded = load_profile_artifact(str(path))
        assert loaded == validate_profile_artifact(loaded)
        aggregate = loaded["counters"]["aggregate"]
        assert aggregate["events_popped"] == 150  # additive
        assert aggregate["bw_max_component_flows"] == 7  # max, not sum
        assert loaded["run"]["cells"] == 2
        assert loaded["run"]["wall_time_s"] == 1.25

    def test_validator_rejects_malformed_documents(self, profile_document):
        with pytest.raises(ArtifactError, match="schema"):
            validate_profile_artifact({"schema": "blobcr-repro/bench-artifact"})
        broken = copy.deepcopy(profile_document)
        broken["counters"]["per_cell"][0].pop("counters")
        with pytest.raises(ArtifactError, match="missing 'counters'"):
            validate_profile_artifact(broken)
        broken = copy.deepcopy(profile_document)
        broken["hotspots"] = [{"function": "f"}]
        with pytest.raises(ArtifactError, match="hotspot"):
            validate_profile_artifact(broken)
        broken = copy.deepcopy(profile_document)
        broken["schema_version"] = 99
        with pytest.raises(ArtifactError, match="schema_version"):
            validate_profile_artifact(broken)


class TestRegressionGate:
    def test_identical_artifacts_pass(self, fig7_artifact):
        report = check_regression(fig7_artifact, fig7_artifact)
        assert report.ok, report.failures

    def test_large_regression_fails(self, fig7_artifact):
        slow = copy.deepcopy(fig7_artifact)
        for experiment in slow["experiments"].values():
            experiment["wall_time_s"] = experiment["wall_time_s"] * 10 + 100
        report = check_regression(fig7_artifact, slow)
        assert not report.ok
        assert any("exceeds calibrated allowance" in f for f in report.failures)

    def test_calibration_scales_the_allowance(self, fig7_artifact):
        # Twice-slower machine: the same 10x slowdown passes once the
        # baseline spin time says the hardware itself is 20x slower.
        slow = copy.deepcopy(fig7_artifact)
        for experiment in slow["experiments"].values():
            experiment["wall_time_s"] *= 10
        slow["calibration"]["spin_time_s"] = fig7_artifact["calibration"]["spin_time_s"] * 20
        report = check_regression(fig7_artifact, slow)
        assert report.ok, report.failures

    def test_new_experiments_need_an_explicit_baseline(self, fig7_artifact):
        extended = copy.deepcopy(fig7_artifact)
        extended["experiments"]["ft"] = {"rows": [], "wall_time_s": 1.0}
        report = check_regression(fig7_artifact, extended)
        assert not report.ok
        assert any("without a committed baseline" in f for f in report.failures)
        allowed = check_regression(fig7_artifact, extended, allow_new=True)
        assert allowed.ok, allowed.failures
        assert any("ungated" in line for line in allowed.lines)
        # Baseline-only experiments are reported, not silently skipped.
        report = check_regression(extended, fig7_artifact)
        assert report.ok, report.failures
        assert any("baseline-only" in line for line in report.lines)

    def test_allow_new_covers_an_all_new_artifact(self, fig7_artifact):
        # Recording a brand-new scenario alone: nothing shared with the
        # baseline, but --allow-new-experiments accounts for all of it.
        novel = copy.deepcopy(fig7_artifact)
        novel["experiments"] = {"newscenario": {"rows": [], "wall_time_s": 1.0}}
        assert not check_regression(fig7_artifact, novel).ok
        report = check_regression(fig7_artifact, novel, allow_new=True)
        assert report.ok, report.failures
        assert any("ungated" in line for line in report.lines)

    def test_determinism_gate(self, fig7_artifact):
        assert check_determinism(fig7_artifact, fig7_artifact).ok
        mutated = copy.deepcopy(fig7_artifact)
        mutated["experiments"]["fig7"]["rows"][0]["off time_s"] += 1.0
        report = check_determinism(fig7_artifact, mutated)
        assert not report.ok
        assert "fig7" in report.failures[0]

    def test_speedup_gate(self, fig7_artifact):
        fast = copy.deepcopy(fig7_artifact)
        fast["run"]["wall_time_s"] = fig7_artifact["run"]["wall_time_s"] / 2
        fast["environment"]["cpu_count"] = 4
        assert speedup(fig7_artifact, fast) == pytest.approx(2.0)
        assert check_speedup(fig7_artifact, fast, min_speedup=1.5).ok
        assert not check_speedup(fig7_artifact, fast, min_speedup=2.5).ok

    def test_speedup_gate_skips_on_single_core(self, fig7_artifact):
        slow = copy.deepcopy(fig7_artifact)
        slow["run"]["wall_time_s"] = fig7_artifact["run"]["wall_time_s"] * 2
        slow["environment"]["cpu_count"] = 1
        report = check_speedup(fig7_artifact, slow, min_speedup=1.05)
        assert report.ok
        assert any("skipped" in line for line in report.lines)
