"""Tests for the declarative scenario engine (spec, overrides, new sweeps)."""

import pytest

from repro.experiments.fig2_checkpoint import SCENARIO as FIG2
from repro.experiments.fig2_checkpoint import fig2_cells
from repro.runner import RunConfig, load_all
from repro.runner.cells import run_cells_inline
from repro.scenarios import (
    Axis,
    FailurePlan,
    ScenarioSpec,
    apply_cluster_overrides,
    axis_overrides_for,
    get_scenario,
    scenario_names,
    split_overrides,
)
from repro.scenarios.contention import run_contention
from repro.scenarios.fault_tolerance import SCENARIO as FT
from repro.scenarios.fault_tolerance import merge_ft
from repro.scenarios.scale import SCENARIO as SCALE
from repro.util.config import GRAPHENE
from repro.util.errors import ConfigurationError
from repro.util.units import MB

SMALL = GRAPHENE.scaled(compute_nodes=6, service_nodes=3)


class TestAxis:
    def test_pick_scales(self):
        axis = Axis("n", (1, 2), paper_values=(10, 20))
        assert axis.pick(False) == (1, 2)
        assert axis.pick(True) == (10, 20)
        assert Axis("n", (1, 2)).pick(True) == (1, 2)

    def test_coerce_follows_value_type(self):
        assert Axis("n", (4, 8)).coerce("16") == 16
        assert Axis("f", (0.5,)).coerce("2.5") == 2.5
        assert Axis("s", ("a",)).coerce("b") == "b"
        with pytest.raises(ConfigurationError, match="cannot parse"):
            Axis("n", (4,)).coerce("many")

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="no values"):
            Axis("n", ()).validate()
        with pytest.raises(ConfigurationError, match="non-empty"):
            Axis("", (1,)).validate()


class TestFailurePlan:
    def test_modes_are_exclusive(self):
        with pytest.raises(ConfigurationError, match="cannot mix"):
            FailurePlan(mtbf_s=10.0, at_times=(1.0,)).validate()
        with pytest.raises(ConfigurationError, match="horizon"):
            FailurePlan(mtbf_s=10.0).validate()
        FailurePlan(mtbf_s=10.0, horizon_s=100.0).validate()
        FailurePlan(at_times=(1.0, 2.0)).validate()
        assert not FailurePlan().enabled


class TestScenarioSpec:
    def test_validation_rejects_bad_specs(self):
        good = FIG2
        with pytest.raises(ConfigurationError, match="duplicate"):
            ScenarioSpec(
                name="x",
                description="",
                axes=(Axis("a", (1,)), Axis("a", (2,))),
                key_axes=("a",),
                cell_func=lambda: {},
                cell_params=lambda p: {},
                merge=lambda r: None,
            ).validate()
        with pytest.raises(ConfigurationError, match="not sweep axes"):
            ScenarioSpec(
                name="x",
                description="",
                axes=(Axis("a", (1,)),),
                key_axes=("a", "b"),
                cell_func=lambda: {},
                cell_params=lambda p: {},
                merge=lambda r: None,
            ).validate()
        good.validate()  # the registered specs are valid

    def test_with_axis_values_unknown_axis(self):
        with pytest.raises(ConfigurationError, match="no axis"):
            FIG2.with_axis_values(nonsense=(1,))

    def test_declarative_enumeration_matches_legacy_wrapper(self):
        cells_a = fig2_cells(scale_points=(4,), buffer_sizes=(2 * MB,), spec=SMALL)
        cells_b = FIG2.with_axis_values(
            instances=(4,), buffer_bytes=(2 * MB,)
        ).build_cells(cluster_spec=SMALL)
        assert [c.key for c in cells_a] == [c.key for c in cells_b]
        assert [c.seed for c in cells_a] == [c.seed for c in cells_b]
        assert [c.params for c in cells_a] == [c.params for c in cells_b]

    def test_paper_scale_switches_axis_values(self):
        reduced = FIG2.enumerate_cells(RunConfig(paper_scale=False))
        paper = FIG2.enumerate_cells(RunConfig(paper_scale=True))
        assert len(paper) > len(reduced)

    def test_scale_scenario_reaches_16384_at_paper_scale(self):
        cells = SCALE.enumerate_cells(RunConfig(paper_scale=True))
        assert any(c.params["instances"] == 512 for c in cells)
        assert any(c.params["instances"] == 16384 for c in cells)

    def test_cluster_plan_applies_on_default_and_override(self):
        cells = FT.enumerate_cells(RunConfig())
        assert cells[0].params["spec"].blobseer.replication >= 2
        cells = FT.enumerate_cells(RunConfig(spec=SMALL))
        assert cells[0].params["spec"].compute_nodes == SMALL.compute_nodes
        assert cells[0].params["spec"].blobseer.replication >= 2
        # Paper figures pass the runner's spec through untouched.
        assert FIG2.enumerate_cells(RunConfig())[0].params["spec"] is None


class TestOverrides:
    def test_split_overrides_namespaces(self):
        cluster, scenario = split_overrides(
            ["cluster.compute_nodes=64", "ft.mtbf=300|900"], ["ft", "fig2"]
        )
        assert cluster == [("compute_nodes", "64")]
        assert scenario == ["ft.mtbf=300|900"]

    def test_split_overrides_rejects_unknown_namespace(self):
        with pytest.raises(ConfigurationError, match="neither 'cluster' nor"):
            split_overrides(["nope.axis=1"], ["ft"])
        with pytest.raises(ConfigurationError, match="key=value"):
            split_overrides(["cluster.compute_nodes"], ["ft"])
        with pytest.raises(ConfigurationError, match="must be"):
            split_overrides(["seed=3"], ["ft"])

    def test_apply_cluster_overrides_nested(self):
        spec = apply_cluster_overrides(
            GRAPHENE,
            [
                ("compute_nodes", "64"),
                ("blobseer.replication", "3"),
                ("network.latency", "2e-4"),
                ("jitter", "0"),
            ],
        )
        assert spec.compute_nodes == 64
        assert spec.blobseer.replication == 3
        assert spec.network.latency == 2e-4
        assert spec.jitter == 0.0

    def test_apply_cluster_overrides_rejects_bad_paths(self):
        with pytest.raises(ConfigurationError, match="unknown cluster override"):
            apply_cluster_overrides(GRAPHENE, [("nonsense", "1")])
        with pytest.raises(ConfigurationError, match="is a group"):
            apply_cluster_overrides(GRAPHENE, [("blobseer", "1")])
        with pytest.raises(ConfigurationError, match="invalid cluster override"):
            apply_cluster_overrides(GRAPHENE, [("compute_nodes", "0")])

    def test_axis_overrides_reach_enumeration(self):
        config = RunConfig(overrides=("ft.mtbf=42", "ft.approach=BlobCR-app"))
        cells = FT.enumerate_cells(config)
        assert [c.key for c in cells] == ["ft:BlobCR-app:42"]
        assert cells[0].params["mtbf"] == 42.0

    def test_axis_overrides_reject_unknown_axis(self):
        with pytest.raises(ConfigurationError, match="no axis"):
            axis_overrides_for(FT, ("ft.bogus=1",))

    def test_multi_value_sweep_of_non_key_axis_rejected(self):
        # Two instance counts would collapse onto one cell key (same RNG
        # seed, same merged row slot) because `instances` is not a key axis.
        with pytest.raises(ConfigurationError, match="duplicate cell keys"):
            FT.with_axis_values(instances=(4, 8)).build_cells()
        with pytest.raises(ConfigurationError, match="duplicate cell keys"):
            FT.enumerate_cells(RunConfig(overrides=("ft.instances=4|8",)))
        # A single-value override of the same axis is fine.
        cells = FT.enumerate_cells(RunConfig(overrides=("ft.instances=4",)))
        assert all(c.params["instances"] == 4 for c in cells)

    def test_foreign_and_cluster_overrides_are_ignored(self):
        assert axis_overrides_for(FT, ("fig2.instances=4", "cluster.seed=1")) == {}


class TestScenarioRegistry:
    def test_scenarios_registered_with_experiments(self):
        names = load_all()
        assert names[-6:] == ["ft", "scale", "contention", "mtc", "evac", "mig"]
        assert set(scenario_names()) == set(names)
        assert get_scenario("ft") is FT
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("fig99")


class TestBeyondPaperScenarios:
    def test_contention_slows_checkpoints(self):
        result = run_contention(flow_counts=(0, 32), approaches=("BlobCR-app",))
        by_flows = {row["flows"]: row["BlobCR-app"] for row in result.rows}
        assert by_flows[32] > by_flows[0] * 1.2

    def test_ft_merge_reports_recovery(self):
        cells = FT.with_axis_values(
            mtbf=(150.0,), approach=("qcow2-full",), instances=(4,), periods=(2,)
        ).build_cells(cluster_spec=SMALL)
        result = merge_ft(run_cells_inline(cells))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["mtbf_s"] == 150.0
        assert row["recovered_ok"]
        assert row["qcow2-full rollbacks"] >= 1
        assert row["qcow2-full total_s"] > 0
