"""Tests for the multi-tenant service layer (trace, admission, driver, mtc)."""

import json

import pytest

from repro.api import Session
from repro.cli import main
from repro.cluster.cloud import Cloud
from repro.runner import RunConfig, load_all
from repro.runner.select import CellSelector, parse_selectors
from repro.scenarios.overrides import scenario_overrides_for
from repro.scenarios.service import SCENARIO as MTC
from repro.scenarios.service import run_mtc_cell
from repro.scenarios.spec import Axis, ScenarioSpec
from repro.service import (
    AdmissionConfig,
    AdmissionQueue,
    ServiceConfig,
    ServiceTrace,
    dumps_trace,
    loads_trace,
    run_service,
    synthesize_trace,
    tenant_name,
)
from repro.service.slo import TenantStats, slo_columns
from repro.service.trace import Job
from repro.sim.core import Environment
from repro.util.config import GRAPHENE
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.stats import jain_fairness


class TestTraceModel:
    def test_synthesis_is_deterministic(self):
        a = synthesize_trace(6, 2.0, seed=5)
        b = synthesize_trace(6, 2.0, seed=5)
        assert a == b
        assert synthesize_trace(6, 2.0, seed=6) != a

    def test_every_tenant_deploys_first_and_dies_last(self):
        trace = synthesize_trace(5, 1.0, checkpoints=2, restarts=1)
        for jobs in trace.by_tenant().values():
            assert jobs[0].kind == "deploy"
            assert jobs[-1].kind == "kill"
            kinds = [job.kind for job in jobs]
            assert kinds.count("checkpoint") == 2
            assert kinds.count("restart") == 1

    def test_fixed_mode_arrivals_are_evenly_spaced(self):
        trace = synthesize_trace(4, 2.0, mode="fixed")
        arrivals = [jobs[0].at for jobs in trace.by_tenant().values()]
        assert arrivals == [0.0, 0.5, 1.0, 1.5]

    def test_jsonl_round_trip(self):
        trace = synthesize_trace(4, 1.0, seed=3)
        text = dumps_trace(trace)
        header = json.loads(text.splitlines()[0])
        assert header["schema"] == "blobcr-repro/service-trace"
        assert header["version"] == 1
        assert loads_trace(text) == trace.canonical()

    def test_job_order_on_disk_does_not_matter(self):
        trace = synthesize_trace(4, 1.0, seed=3)
        lines = dumps_trace(trace).splitlines()
        shuffled = "\n".join([lines[0]] + list(reversed(lines[1:]))) + "\n"
        assert loads_trace(shuffled) == trace.canonical()

    def test_loader_rejects_malformed_input(self):
        good = dumps_trace(synthesize_trace(2, 1.0))
        lines = good.splitlines()
        with pytest.raises(ConfigurationError, match="empty"):
            loads_trace("")
        with pytest.raises(ConfigurationError, match="schema"):
            loads_trace(good.replace("blobcr-repro/service-trace", "bogus"))
        with pytest.raises(ConfigurationError, match="version"):
            loads_trace(good.replace('"version":1', '"version":2'))
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            loads_trace("\n".join([lines[0], "{nope"]))
        with pytest.raises(ConfigurationError, match="misses key"):
            loads_trace("\n".join([lines[0], '{"tenant":"t0000","seq":0,"kind":"deploy"}']))
        with pytest.raises(ConfigurationError, match="unknown key"):
            loads_trace(
                "\n".join(
                    [lines[0], '{"tenant":"t0000","seq":0,"kind":"deploy","at":0,"x":1}']
                )
            )
        with pytest.raises(ConfigurationError, match="declares"):
            loads_trace("\n".join([lines[0]] + lines[1:-1]))

    def test_structural_validation(self):
        with pytest.raises(ConfigurationError, match="at least one job"):
            ServiceTrace(jobs=()).validate()
        with pytest.raises(ConfigurationError, match="start with a deploy"):
            ServiceTrace(jobs=(Job("t", 0, "checkpoint", 0.0),)).validate()
        with pytest.raises(ConfigurationError, match="not contiguous"):
            ServiceTrace(
                jobs=(Job("t", 0, "deploy", 0.0), Job("t", 2, "kill", 1.0))
            ).validate()
        with pytest.raises(ConfigurationError, match="deploys twice"):
            ServiceTrace(
                jobs=(Job("t", 0, "deploy", 0.0), Job("t", 1, "deploy", 1.0))
            ).validate()
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            ServiceTrace(
                jobs=(Job("t", 0, "deploy", 5.0), Job("t", 1, "kill", 1.0))
            ).validate()
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            Job("t", 0, "reboot", 0.0).validate()

    def test_tenant_schedule_is_keyed_by_name_not_position(self):
        """A tenant's randomness comes from its name: the same name draws the
        same schedule relative to its arrival regardless of tenant count."""
        small = synthesize_trace(3, 1.0, seed=9).by_tenant()[tenant_name(1)]
        large = synthesize_trace(9, 3.0, seed=9).by_tenant()[tenant_name(1)]
        # same arrival window (tenants/rate = 3s) -> identical jobs
        assert small == large


class TestAdmissionQueue:
    def test_grants_immediately_when_slots_free(self):
        env = Environment()
        queue = AdmissionQueue(env, slots=2)
        ticket = queue.submit("a", "deploy")
        assert ticket.state == "granted"
        assert ticket.wait_s == 0.0

    def test_rejects_synchronously_when_queue_full(self):
        env = Environment()
        queue = AdmissionQueue(env, slots=1, max_queue=1)
        first = queue.submit("a", "deploy")
        queue.submit("b", "deploy")  # queued
        third = queue.submit("c", "deploy")
        assert first.state == "granted"
        assert third.state == "rejected"
        assert queue.rejected == 1

    def test_fifo_grants_in_submission_order(self):
        env = Environment()
        queue = AdmissionQueue(env, slots=1, policy="fifo")
        first = queue.submit("a", "deploy")
        second = queue.submit("b", "deploy")
        third = queue.submit("c", "deploy")
        queue.release(first)
        assert second.state == "granted"
        assert third.state == "queued"

    def test_fair_prefers_the_least_served_tenant(self):
        env = Environment()
        queue = AdmissionQueue(env, slots=1, policy="fair")
        first = queue.submit("a", "deploy")
        queue.release(first)
        second = queue.submit("a", "restart")  # a now has 2 grants
        waiting_a = queue.submit("a", "restart")
        waiting_b = queue.submit("b", "deploy")  # b has none yet
        queue.release(second)
        assert waiting_b.state == "granted"
        assert waiting_a.state == "queued"

    def test_timeout_expires_queued_tickets(self):
        env = Environment()
        queue = AdmissionQueue(env, slots=1, timeout_s=3.0)
        held = queue.submit("a", "deploy")
        waiting = queue.submit("b", "deploy")
        env.run(until=10.0)
        assert waiting.state == "timeout"
        assert queue.timed_out == 1
        queue.release(held)  # nothing left to grant; must not blow up

    def test_validation(self):
        env = Environment()
        with pytest.raises(ConfigurationError, match="policy"):
            AdmissionQueue(env, slots=1, policy="lifo")
        with pytest.raises(ConfigurationError, match=">= 1"):
            AdmissionQueue(env, slots=0)
        with pytest.raises(ConfigurationError, match="policy"):
            AdmissionConfig(policy="random").validate()
        with pytest.raises(ConfigurationError, match="timeout"):
            AdmissionConfig(timeout_s=-1.0).validate()


class TestSloAccounting:
    def test_empty_metrics_keep_the_row_schema(self):
        columns = slo_columns("restart", [])
        assert columns == {"restart_p50": 0.0, "restart_p99": 0.0, "restart_p999": 0.0}
        row = TenantStats(name="t").row()
        assert row["rejection_rate"] == 0.0
        assert row["checkpoint_p50"] == 0.0

    def test_quantiles_are_exact_ranks(self):
        samples = [float(i) for i in range(1, 101)]
        columns = slo_columns("q", samples)
        assert columns["q_p50"] == 50.0
        assert columns["q_p99"] == 99.0
        assert columns["q_p999"] == 100.0

    def test_fairness_is_one_for_identical_tenants(self):
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)


class TestNodeReservations:
    def test_reservations_partition_the_cloud(self):
        cloud = Cloud(GRAPHENE.scaled(compute_nodes=6))
        first = cloud.reserve_nodes(2, owner="a")
        second = cloud.reserve_nodes(2, owner="b")
        assert not set(first) & set(second)
        assert sorted(cloud.reserved_by_others("a")) == sorted(second)
        with pytest.raises(SimulationError, match="only 2 live unreserved"):
            cloud.reserve_nodes(3, owner="c")
        cloud.release_owned("a")
        assert cloud.reserve_nodes(3, owner="c")

    def test_claiming_anothers_node_is_an_error(self):
        cloud = Cloud(GRAPHENE.scaled(compute_nodes=4))
        taken = cloud.reserve_nodes(1, owner="a")
        with pytest.raises(SimulationError, match="already reserved"):
            cloud.claim_nodes(taken, owner="b")
        cloud.claim_nodes(taken, owner="a")  # re-claiming your own is fine


class TestServiceDriver:
    def test_same_run_twice_in_process_is_byte_identical(self):
        trace = synthesize_trace(4, 1.0, seed=2)
        config = ServiceConfig(admission=AdmissionConfig(boot_slots=2))
        first = run_service(trace, config)
        second = run_service(trace, config)
        assert first.aggregate_row() == second.aggregate_row()
        assert first.tenant_rows() == second.tenant_rows()

    def test_job_order_in_trace_does_not_change_the_rows(self):
        trace = synthesize_trace(4, 1.0, seed=2)
        reversed_trace = ServiceTrace(jobs=tuple(reversed(trace.jobs)))
        config = ServiceConfig()
        assert (
            run_service(trace, config).tenant_rows()
            == run_service(reversed_trace, config).tenant_rows()
        )

    def test_rejected_deploys_kill_the_tenant(self):
        trace = synthesize_trace(6, 50.0, mode="fixed")  # all arrive at once
        config = ServiceConfig(admission=AdmissionConfig(boot_slots=1, max_queue=1))
        report = run_service(trace, config)
        aggregate = report.aggregate_row()
        assert aggregate["rejection_rate"] > 0
        rejected = [t for t in report.tenants.values() if t.rejected]
        assert rejected
        assert all(t.skipped > 0 for t in rejected)

    def test_failures_force_rollback_restarts(self):
        trace = synthesize_trace(6, 0.5, checkpoints=3, seed=11)
        report = run_service(trace, ServiceConfig(mtbf_s=8.0))
        assert report.injected_failures > 0
        aggregate = report.aggregate_row()
        assert aggregate["failures"] > 0
        assert aggregate["rollbacks"] > 0

    def test_background_flows_slow_the_service_down(self):
        trace = synthesize_trace(3, 1.0, seed=4)
        quiet = run_service(trace, ServiceConfig())
        noisy = run_service(trace, ServiceConfig(background_flows=4))
        assert noisy.background_flows == 4
        assert (
            noisy.aggregate_row()["checkpoint_p50"]
            >= quiet.aggregate_row()["checkpoint_p50"]
        )

    def test_non_blobcr_backends_serve_too(self):
        trace = synthesize_trace(3, 1.0, seed=4)
        report = run_service(trace, ServiceConfig(approach="qcow2-disk-app"))
        assert report.aggregate_row()["completed"] == len(trace.jobs)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="unknown deployment backend"):
            ServiceConfig(approach="tar-app").validate()
        with pytest.raises(ConfigurationError, match=">= 1"):
            ServiceConfig(instances_per_tenant=0).validate()
        with pytest.raises(ConfigurationError, match="MTBF"):
            ServiceConfig(mtbf_s=-1.0).validate()


class TestMtcScenario:
    def test_cell_runs_and_reports_slo_columns(self):
        row = run_mtc_cell(4, 1.0, "fifo")
        for column in (
            "checkpoint_p50",
            "checkpoint_p99",
            "checkpoint_p999",
            "restart_p50",
            "restart_p99",
            "restart_p999",
            "queue_wait_p50",
            "rejection_rate",
            "fairness",
        ):
            assert column in row
        assert row["sim_time_s"] > 0
        assert len(row["tenant_rows"]) == 4

    def test_cell_is_deterministic_in_process(self):
        assert run_mtc_cell(4, 1.0, "fair") == run_mtc_cell(4, 1.0, "fair")

    def test_workers_do_not_change_rows(self):
        session = Session()
        cells = ["mtc:8:1:fifo"]
        serial = session.run_scenario("mtc", cells=cells, workers=1)
        parallel = session.run_scenario("mtc", cells=cells, workers=4)
        assert serial.rows == parallel.rows

    def test_serve_matches_the_scenario_cell(self):
        report = Session().serve(tenants=4, rate=1.0, policy="fifo")
        cell = run_mtc_cell(4, 1.0, "fifo")
        aggregate = dict(report.aggregate)
        aggregate.pop("tenants")
        expected = {
            k: v
            for k, v in cell.items()
            if k not in ("tenants", "rate", "policy", "tenant_rows", "sim_time_s")
        }
        assert aggregate == expected
        assert report.tenant_rows == cell["tenant_rows"]

    def test_serve_accepts_a_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(dumps_trace(synthesize_trace(3, 1.0, seed=8)))
        report = Session().serve(str(path))
        assert report.tenants == 3
        with pytest.raises(ConfigurationError, match="ServiceTrace"):
            Session().serve(42)

    def test_duration_cap_truncates_the_trace(self):
        full = run_mtc_cell(4, 1.0, "fifo")
        capped = run_mtc_cell(4, 1.0, "fifo", duration=5.0)
        assert capped["submitted"] < full["submitted"]
        with pytest.raises(ConfigurationError, match="truncates away every job"):
            run_mtc_cell(4, 1.0, "fifo", duration=1e-9)

    def test_registered_in_canonical_order(self):
        names = load_all()
        assert "mtc" in names and names[-2:] == ["evac", "mig"]
        assert MTC.params["boot_slots"] == 4


class TestScenarioParams:
    def test_param_overrides_are_coerced_and_applied(self):
        axes, params = scenario_overrides_for(
            MTC, ["mtc.duration=30", "mtc.tenants=4|6"]
        )
        assert params == {"duration": 30.0}
        assert axes == {"tenants": (4, 6)}

    def test_param_overrides_reject_sweeps_and_unknown_names(self):
        with pytest.raises(ConfigurationError, match="single value"):
            scenario_overrides_for(MTC, ["mtc.duration=30|60"])
        with pytest.raises(ConfigurationError, match="no axis or parameter"):
            scenario_overrides_for(MTC, ["mtc.bogus=1"])
        with pytest.raises(ConfigurationError, match="cannot parse"):
            scenario_overrides_for(MTC, ["mtc.boot_slots=many"])

    def test_params_flow_into_cell_parameters(self):
        cells = MTC.build_cells()
        assert all(cell.params["boot_slots"] == 4 for cell in cells)
        config = RunConfig(overrides=("mtc.boot_slots=2",))
        overridden = MTC.enumerate_cells(config)
        assert all(cell.params["boot_slots"] == 2 for cell in overridden)

    def test_param_axis_collision_is_rejected(self):
        spec = ScenarioSpec(
            name="x",
            description="d",
            axes=(Axis("n", (1,)),),
            key_axes=("n",),
            cell_func=lambda **kw: {},
            cell_params=lambda point: {},
            merge=lambda results: None,
            params={"n": 3},
        )
        with pytest.raises(ConfigurationError, match="collide"):
            spec.validate()


class TestCliSurface:
    def test_run_alias_and_wildcard_selectors(self, capsys):
        assert main(["run", "--cells", "mtc:4:*", "--override", "mtc.tenants=4"]) == 0
        out = capsys.readouterr().out
        assert "mtc" in out
        assert "fifo" in out and "fair" in out

    def test_wildcard_matches_parts(self):
        selector = parse_selectors(["mtc:*:1:f*"])[0]
        assert selector == CellSelector(experiment="mtc", parts=("*", "1", "f*"))
        cells = MTC.build_cells()
        matched = [cell.key for cell in cells if selector.matches(cell)]
        assert matched == [
            "mtc:8:1:fifo",
            "mtc:8:1:fair",
            "mtc:100:1:fifo",
            "mtc:100:1:fair",
        ]

    def test_unmatched_wildcard_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--cells", "mtc:777:*"])
