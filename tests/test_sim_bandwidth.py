"""Unit and property tests for the max-min fair bandwidth model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BandwidthSystem, Environment
from repro.util.errors import FailureInjected, SimulationError


def run_transfers(transfers, channels_spec):
    """Run a set of transfers and return their completion times.

    ``transfers`` is a list of (nbytes, [channel names]); ``channels_spec``
    maps channel name to capacity.
    """
    env = Environment()
    bw = BandwidthSystem(env)
    channels = {name: bw.channel(cap, name) for name, cap in channels_spec.items()}
    done_times = {}

    def mover(i, nbytes, names):
        yield bw.transfer(nbytes, [channels[n] for n in names], label=f"t{i}")
        done_times[i] = env.now

    for i, (nbytes, names) in enumerate(transfers):
        env.process(mover(i, nbytes, names))
    env.run()
    return done_times


class TestSingleChannel:
    def test_lone_transfer_duration(self):
        times = run_transfers([(1000.0, ["link"])], {"link": 100.0})
        assert times[0] == pytest.approx(10.0)

    def test_two_equal_transfers_share_fairly(self):
        times = run_transfers([(1000.0, ["link"]), (1000.0, ["link"])], {"link": 100.0})
        # Both get 50 B/s and finish together at t=20.
        assert times[0] == pytest.approx(20.0)
        assert times[1] == pytest.approx(20.0)

    def test_short_transfer_releases_bandwidth(self):
        times = run_transfers([(1000.0, ["link"]), (200.0, ["link"])], {"link": 100.0})
        # Until t=4 both run at 50 B/s; the short one finishes, the long one
        # then runs at 100 B/s with 800 bytes left -> finishes at t=12.
        assert times[1] == pytest.approx(4.0)
        assert times[0] == pytest.approx(12.0)

    def test_zero_byte_transfer_completes_immediately(self):
        times = run_transfers([(0.0, ["link"])], {"link": 10.0})
        assert times[0] == pytest.approx(0.0)

    def test_negative_bytes_rejected(self):
        env = Environment()
        bw = BandwidthSystem(env)
        link = bw.channel(10.0)
        with pytest.raises(SimulationError):
            bw.transfer(-1, [link])

    def test_latency_added_after_transmission(self):
        env = Environment()
        bw = BandwidthSystem(env)
        link = bw.channel(100.0)
        done = {}

        def mover():
            yield bw.transfer(1000.0, [link], latency=0.5)
            done["t"] = env.now

        env.process(mover())
        env.run()
        assert done["t"] == pytest.approx(10.5)


class TestMultiChannel:
    def test_bottleneck_is_min_capacity(self):
        times = run_transfers([(1000.0, ["fast", "slow"])], {"fast": 100.0, "slow": 10.0})
        assert times[0] == pytest.approx(100.0)

    def test_cross_traffic_on_one_link(self):
        # Flow 0 crosses A and B; flow 1 crosses only A. A=100, B=40.
        # Max-min: flow 0 is limited by B to 40; flow 1 then gets the
        # remaining 60 on A.
        times = run_transfers(
            [(400.0, ["A", "B"]), (600.0, ["A"])],
            {"A": 100.0, "B": 40.0},
        )
        assert times[0] == pytest.approx(10.0)
        assert times[1] == pytest.approx(10.0)

    def test_many_flows_through_switch(self):
        # 8 node-to-node transfers, each limited by its own NIC (10 B/s) but
        # all crossing a 40 B/s switch: the switch is the bottleneck.
        spec = {"switch": 40.0}
        transfers = []
        for i in range(8):
            spec[f"nic{i}"] = 10.0
            transfers.append((100.0, [f"nic{i}", "switch"]))
        times = run_transfers(transfers, spec)
        # Each flow gets 40/8 = 5 B/s -> 20 s.
        for i in range(8):
            assert times[i] == pytest.approx(20.0)


class TestFailure:
    def test_fail_channel_aborts_flows(self):
        env = Environment()
        bw = BandwidthSystem(env)
        link = bw.channel(10.0, "link")
        outcome = {}

        def mover():
            try:
                yield bw.transfer(1000.0, [link])
                outcome["result"] = "done"
            except FailureInjected:
                outcome["result"] = ("failed", env.now)

        def killer():
            yield env.timeout(5)
            bw.fail_channel(link, FailureInjected("node died", node="n0"))

        env.process(mover())
        env.process(killer())
        env.run()
        assert outcome["result"] == ("failed", 5.0)

    def test_fail_channel_without_flows_returns_zero(self):
        env = Environment()
        bw = BandwidthSystem(env)
        link = bw.channel(10.0)
        assert bw.fail_channel(link, FailureInjected()) == 0

    def test_unaffected_flows_continue(self):
        env = Environment()
        bw = BandwidthSystem(env)
        link_a = bw.channel(10.0, "a")
        link_b = bw.channel(10.0, "b")
        done = {}

        def mover(name, link):
            try:
                yield bw.transfer(100.0, [link], label=name)
                done[name] = env.now
            except FailureInjected:
                done[name] = "failed"

        def killer():
            yield env.timeout(1)
            bw.fail_channel(link_a, FailureInjected())

        env.process(mover("a", link_a))
        env.process(mover("b", link_b))
        env.process(killer())
        env.run()
        assert done["a"] == "failed"
        assert done["b"] == pytest.approx(10.0)


class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=10),
        capacity=st.floats(1.0, 1e6),
    )
    def test_property_total_time_at_least_serial_bound(self, sizes, capacity):
        """A shared channel can never move data faster than its capacity."""
        transfers = [(s, ["link"]) for s in sizes]
        times = run_transfers(transfers, {"link": capacity})
        makespan = max(times.values())
        assert makespan >= sum(sizes) / capacity * (1 - 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(sizes=st.lists(st.floats(1.0, 1e5), min_size=2, max_size=6))
    def test_property_completion_order_matches_size_order(self, sizes):
        """With equal start times and one shared link, smaller transfers
        never finish after strictly larger ones."""
        transfers = [(s, ["link"]) for s in sizes]
        times = run_transfers(transfers, {"link": 50.0})
        order = sorted(range(len(sizes)), key=lambda i: (sizes[i], i))
        finish = [times[i] for i in order]
        assert all(finish[i] <= finish[i + 1] + 1e-6 for i in range(len(finish) - 1))

    def test_bytes_carried_accounting_is_exact(self):
        env = Environment()
        bw = BandwidthSystem(env)
        link = bw.channel(100.0, "link")

        def mover():
            yield bw.transfer(500.0, [link])

        env.process(mover())
        env.run()
        # Exact, not approximate: completed flows contribute their size once,
        # at detach, instead of a rounding per-settle multiply-add.
        assert link.bytes_carried == 500.0
        assert bw.bytes_delivered == 500.0

    def test_bytes_carried_exact_under_many_rate_changes(self):
        """A staggered workload forces dozens of re-settles per flow; the
        carried-bytes totals must still be exact to the last bit."""
        env = Environment()
        bw = BandwidthSystem(env)
        link = bw.channel(97.0, "link")
        sizes = [1000.0 + 13.7 * i for i in range(20)]

        def mover(delay, nbytes):
            yield env.timeout(delay)
            yield bw.transfer(nbytes, [link])

        for i, nbytes in enumerate(sizes):
            env.process(mover(i * 0.37, nbytes))
        env.run()
        # Conservation: sum of settled bytes == sum of completed flow sizes.
        assert bw.bytes_delivered == sum(sizes)
        assert link.bytes_carried == sum(sizes)
        assert bw.completed_flows == len(sizes)

    def test_aborted_flows_contribute_delivered_bytes_only(self):
        env = Environment()
        bw = BandwidthSystem(env)
        link = bw.channel(100.0, "link")

        def mover():
            try:
                yield bw.transfer(1000.0, [link])
            except FailureInjected:
                pass

        def killer():
            yield env.timeout(5)
            bw.fail_channel(link, FailureInjected())

        env.process(mover())
        env.process(killer())
        env.run()
        # 5 s at 100 B/s: the aborted flow carried 500 of its 1000 bytes.
        assert link.bytes_carried == pytest.approx(500.0)
        assert bw.bytes_delivered == 0.0
        assert bw.completed_flows == 0
