"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    Store,
)
from repro.util.errors import SimulationError


class TestEvent:
    def test_succeed_and_value(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered
        ev.succeed(42)
        assert ev.triggered and ev.ok
        env.run()
        assert ev.processed
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_untriggered_value_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value


class TestTimeoutAndProcess:
    def test_timeout_advances_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(2.5)
            return env.now

        p = env.process(proc())
        result = env.run(p)
        assert result == pytest.approx(2.5)
        assert env.now == pytest.approx(2.5)

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_process_return_value(self):
        env = Environment()

        def child():
            yield env.timeout(1)
            return "done"

        def parent():
            value = yield env.process(child())
            return value + "!"

        assert env.run(env.process(parent())) == "done!"

    def test_exception_propagates_to_parent(self):
        env = Environment()

        def child():
            yield env.timeout(1)
            raise ValueError("boom")

        def parent():
            try:
                yield env.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        assert env.run(env.process(parent())) == "caught boom"

    def test_unhandled_exception_reraised_by_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise RuntimeError("unhandled")

        with pytest.raises(RuntimeError, match="unhandled"):
            env.run(env.process(bad()))

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad():
            yield 42

        proc = env.process(bad())
        with pytest.raises(SimulationError):
            env.run(proc)

    def test_processes_interleave_in_time_order(self):
        env = Environment()
        trace = []

        def worker(name, delay):
            yield env.timeout(delay)
            trace.append((env.now, name))

        env.process(worker("slow", 3))
        env.process(worker("fast", 1))
        env.process(worker("medium", 2))
        env.run()
        assert [name for _t, name in trace] == ["fast", "medium", "slow"]

    def test_run_until_time(self):
        env = Environment()
        fired = []

        def worker():
            yield env.timeout(5)
            fired.append(env.now)

        env.process(worker())
        env.run(until=2.0)
        assert fired == [] and env.now == pytest.approx(2.0)
        env.run()
        assert fired == [5.0]


class TestInterrupt:
    def test_interrupt_wakes_process(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        proc = env.process(sleeper())

        def killer():
            yield env.timeout(3)
            proc.interrupt("node-failure")

        env.process(killer())
        env.run()
        assert log == [(3.0, "node-failure")]

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        proc = env.process(quick())
        env.run()
        proc.interrupt("late")  # must not raise


class TestConditions:
    def test_all_of_collects_values(self):
        env = Environment()
        timeouts = [env.timeout(i, value=i) for i in (1, 2, 3)]
        cond = AllOf(env, timeouts)
        values = env.run(cond)
        assert sorted(values.values()) == [1, 2, 3]
        assert env.now == pytest.approx(3)

    def test_any_of_fires_on_first(self):
        env = Environment()
        cond = AnyOf(env, [env.timeout(5, "slow"), env.timeout(1, "fast")])
        assert env.run(cond) == "fast"
        assert env.now == pytest.approx(1)

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        cond = AllOf(env, [])
        assert cond.triggered


class TestResource:
    def test_mutual_exclusion(self):
        env = Environment()
        res = Resource(env, capacity=1)
        concurrency = []
        active = [0]

        def user(_i):
            req = res.request()
            yield req
            active[0] += 1
            concurrency.append(active[0])
            yield env.timeout(1)
            active[0] -= 1
            res.release(req)

        for i in range(5):
            env.process(user(i))
        env.run()
        assert max(concurrency) == 1
        assert env.now == pytest.approx(5)

    def test_capacity_two(self):
        env = Environment()
        res = Resource(env, capacity=2)
        done = []

        def user(i):
            req = res.request()
            yield req
            yield env.timeout(1)
            res.release(req)
            done.append((env.now, i))

        for i in range(4):
            env.process(user(i))
        env.run()
        assert env.now == pytest.approx(2)
        assert len(done) == 4

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        held = res.request()
        assert held.triggered
        queued = res.request()
        assert not queued.triggered
        res.release(queued)  # cancels the queued request
        assert res.queue_length == 0

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_release_unknown_request_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        req = other.request()
        with pytest.raises(SimulationError):
            res.release(req)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        got = store.get()
        env.run()
        assert got.value == "a"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append((env.now, item))

        def producer():
            yield env.timeout(2)
            store.put("msg")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == [(2.0, "msg")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)
        out = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        env.process(consumer())
        env.run()
        assert out == [0, 1, 2]

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put(7)
        assert store.try_get() == 7
