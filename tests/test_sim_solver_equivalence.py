"""Equivalence of the incremental bandwidth solver and the reference solver.

The incremental engine (``repro.sim.bandwidth``) settles and re-allocates
only the connected component of flows/channels touched by an event; the
retained :func:`~repro.sim.bandwidth.reference_allocation` water-filling
solver computes global max-min fair rates from scratch.  These tests assert
the two agree *exactly* (float equality, not approximately):

* ``BandwidthSystem(verify=True)`` re-derives every flow's rate globally
  after each incremental recomputation and raises on any mismatch -- the
  property tests drive randomised multi-channel topologies and start/finish
  schedules through it;
* component discovery must never cross disjoint fabrics, and a fabric's
  completion times must be bit-identical whether or not unrelated fabrics
  are busy (the strongest observable form of component independence).
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BandwidthSystem, Environment
from repro.sim.bandwidth import reference_allocation
from repro.util.config import SolverConfig
from repro.util.errors import SimulationError


def build_system(verify=True):
    env = Environment()
    return env, BandwidthSystem(env, verify=verify)


# -- randomised schedules through the runtime cross-check -----------------------------


@st.composite
def topologies(draw):
    """A random multi-channel fabric plus a start/finish schedule over it."""
    n_channels = draw(st.integers(2, 6))
    capacities = [
        draw(st.floats(1.0, 1e4, allow_nan=False, allow_infinity=False))
        for _ in range(n_channels)
    ]
    n_flows = draw(st.integers(1, 12))
    flows = []
    for _ in range(n_flows):
        crossed = draw(
            st.lists(st.integers(0, n_channels - 1), min_size=1, max_size=3, unique=True)
        )
        size = draw(st.floats(1.0, 1e5))
        start = draw(st.floats(0.0, 50.0))
        flows.append((crossed, size, start))
    return capacities, flows


@settings(max_examples=60, deadline=None)
@given(topology=topologies())
def test_incremental_rates_match_reference_exactly(topology):
    """Every recomputation along a random schedule matches the global solver.

    verify=True makes the engine raise SimulationError at the *first* event
    where any flow's incremental rate differs from the reference allocation
    over the whole system, so simply running to completion is the assertion.
    """
    capacities, flow_specs = topology
    env, bw = build_system(verify=True)
    channels = [bw.channel(cap, f"ch{i}") for i, cap in enumerate(capacities)]
    done_times = {}

    def mover(i, crossed, size, start):
        yield env.timeout(start)
        yield bw.transfer(size, [channels[c] for c in crossed], label=f"f{i}")
        done_times[i] = env.now

    for i, (crossed, size, start) in enumerate(flow_specs):
        env.process(mover(i, crossed, size, start))
    env.run()
    assert len(done_times) == len(flow_specs)
    assert bw.active_flows == 0


def test_coinciding_deadlines_across_disjoint_components():
    """Regression: two disjoint fabrics whose flows complete at the same
    float instant.  The timer pops *both* heap entries as seeds; under
    persistence each component is replanned separately, and the first
    replan's re-armed timer must still account for the not-yet-replanned
    second component (its entry was already popped) instead of raising
    "active flows but no finite completion horizon".

    The sizes are tuned so both deadlines round to the identical double:
    4.0/3.0 == 1.0 + 1.0/3.0 in IEEE-754.
    """
    env, bw = build_system(verify=True)
    channels = [bw.channel(3.0, f"ch{i}") for i in range(2)]
    done_times = {}

    def mover(i, channel, size, start):
        yield env.timeout(start)
        yield bw.transfer(size, [channel], label=f"f{i}")
        done_times[i] = env.now

    env.process(mover(0, channels[0], 4.0, 0.0))
    env.process(mover(1, channels[1], 1.0, 1.0))
    env.run()
    assert done_times[0] == done_times[1] == 4.0 / 3.0
    assert bw.active_flows == 0


@settings(max_examples=40, deadline=None)
@given(topology=topologies(), fail_at=st.floats(0.5, 20.0), victim=st.integers(0, 5))
def test_incremental_rates_match_reference_under_channel_failure(topology, fail_at, victim):
    """Aborting flows mid-flight (fail-stop) must keep rates reference-exact."""
    capacities, flow_specs = topology
    env, bw = build_system(verify=True)
    channels = [bw.channel(cap, f"ch{i}") for i, cap in enumerate(capacities)]
    outcomes = {}

    def mover(i, crossed, size, start):
        yield env.timeout(start)
        try:
            yield bw.transfer(size, [channels[c] for c in crossed], label=f"f{i}")
            outcomes[i] = "done"
        except RuntimeError:
            outcomes[i] = "failed"

    def killer():
        yield env.timeout(fail_at)
        bw.fail_channel(channels[victim % len(channels)], RuntimeError("fabric died"))

    for i, (crossed, size, start) in enumerate(flow_specs):
        env.process(mover(i, crossed, size, start))
    env.process(killer())
    env.run()
    assert len(outcomes) == len(flow_specs)


# -- same-instant bursts: batched vs scalar vs reference -------------------------------


@st.composite
def burst_topologies(draw):
    """A fabric plus a schedule where whole groups of flows start at the
    same simulated instant (the case the batched end-of-instant flush
    coalesces into one recomputation per connected component).

    Both the burst sizes ``k`` and the component shapes (which channels each
    flow crosses) are randomised, so bursts land on one component, several
    disjoint ones, and everything in between.
    """
    n_channels = draw(st.integers(2, 8))
    capacities = [
        draw(st.floats(1.0, 1e4, allow_nan=False, allow_infinity=False))
        for _ in range(n_channels)
    ]
    instants = draw(
        st.lists(st.floats(0.0, 20.0), min_size=1, max_size=3, unique=True)
    )
    flows = []
    for start in instants:
        k = draw(st.integers(1, 10))
        for _ in range(k):
            crossed = draw(
                st.lists(
                    st.integers(0, n_channels - 1), min_size=1, max_size=3, unique=True
                )
            )
            size = draw(st.floats(1.0, 1e5))
            flows.append((crossed, size, start))
    return capacities, flows


def run_schedule(capacities, flow_specs, *, batching, verify=False, persistence=True):
    """Drive a schedule to completion; returns {flow index: completion time}."""
    env = Environment()
    bw = BandwidthSystem(
        env,
        config=SolverConfig(verify=verify, batching=batching, persistence=persistence),
    )
    channels = [bw.channel(cap, f"ch{i}") for i, cap in enumerate(capacities)]
    done = {}

    def mover(i, crossed, size, start):
        yield env.timeout(start)
        yield bw.transfer(size, [channels[c] for c in crossed], label=f"f{i}")
        done[i] = env.now

    for i, (crossed, size, start) in enumerate(flow_specs):
        env.process(mover(i, crossed, size, start))
    env.run()
    return done


class TestSameInstantBursts:
    @settings(max_examples=50, deadline=None)
    @given(topology=burst_topologies())
    def test_batched_bursts_are_reference_exact(self, topology):
        """verify=True re-derives every batched allocation through the global
        reference solver and raises at the first mismatching float."""
        capacities, flow_specs = topology
        done = run_schedule(capacities, flow_specs, batching=True, verify=True)
        assert len(done) == len(flow_specs)

    @settings(max_examples=50, deadline=None)
    @given(topology=burst_topologies())
    def test_batched_and_scalar_paths_bit_identical(self, topology):
        """The batched flush and the per-event scalar engine must agree on
        every completion time exactly -- not approximately."""
        capacities, flow_specs = topology
        batched = run_schedule(capacities, flow_specs, batching=True)
        scalar = run_schedule(capacities, flow_specs, batching=False)
        assert batched == scalar  # exact float equality

    def test_burst_coalesces_into_one_batch(self):
        from repro.sim.instrumentation import counters_reset, counters_snapshot

        counters_reset()
        env = Environment()
        bw = BandwidthSystem(env, config=SolverConfig())
        link = bw.channel(100.0, "link")
        for i in range(8):
            # All eight transfers are issued at t=0: one flush, one batch.
            bw.transfer(1000.0 + i, [link], label=f"b{i}")
        env.run()
        after = counters_snapshot()
        assert after.bw_flows_completed == 8
        assert after.bw_max_batch_flows == 8

    def test_disjoint_burst_flushes_per_component(self):
        """A same-instant burst across disjoint fabrics is replanned once
        per connected component, never globally."""
        from repro.sim.instrumentation import counters_reset, counters_snapshot

        counters_reset()
        env = Environment()
        bw = BandwidthSystem(env, config=SolverConfig(verify=True))
        disks = [bw.channel(50.0, f"disk{i}") for i in range(4)]
        for i, disk in enumerate(disks):
            bw.transfer(500.0 + 10.0 * i, [disk], label=f"io{i}")
        env.run()
        after = counters_snapshot()
        assert after.bw_flows_completed == 4
        # One flush covers the whole instant (all four starts)...
        assert after.bw_batches == 1
        assert after.bw_max_batch_flows == 4
        # ...but each disk is its own component, so no single recomputation
        # ever spans more than one flow.
        assert after.bw_max_component_flows == 1


class TestBatchingRowParity:
    def test_solver_no_batch_rows_byte_identical_on_reduced_suite(self):
        """``--solver-no-batch`` (cluster.solver.batching=false) must yield
        rows byte-identical to the default batched engine across the whole
        reduced scale suite."""
        from repro.api.session import Session

        batched = Session().run_scenario("scale")
        scalar = Session().run_scenario(
            "scale", overrides={"cluster.solver.batching": False}
        )
        assert json.dumps(batched.rows, sort_keys=True) == json.dumps(
            scalar.rows, sort_keys=True
        )

    def test_solver_no_persist_rows_byte_identical_on_reduced_suite(self):
        """``--solver-no-persist`` (cluster.solver.persistence=false) must
        yield rows byte-identical to the default persistent engine across
        the whole reduced scale suite."""
        from repro.api.session import Session

        persistent = Session().run_scenario("scale")
        fresh = Session().run_scenario(
            "scale", overrides={"cluster.solver.persistence": False}
        )
        assert json.dumps(persistent.rows, sort_keys=True) == json.dumps(
            fresh.rows, sort_keys=True
        )


# -- persistent component / array state vs the BFS + rebuild oracles -------------------


def assert_persistent_components_match_bfs(bw):
    """Every attached flow's persistent component must equal a fresh BFS
    discovery over its channels -- same members, consistent back-pointers."""
    for flow in bw._flows:
        if not flow.channels:
            continue
        comp = flow.channels[0].comp
        assert comp is not None
        assert flow in comp.flows
        assert set(comp.flows) == set(bw._component(flow.channels))
        for channel in flow.channels:
            assert channel.comp is comp


def drive_stepwise_checking_components(capacities, flow_specs, fail_at=None, victim=0):
    """Run a schedule one event at a time under the persistent engine,
    re-validating the union-find component structure against the BFS oracle
    after *every* event (not just at replans)."""
    env = Environment()
    bw = BandwidthSystem(env, config=SolverConfig(verify=True))
    channels = [bw.channel(cap, f"ch{i}") for i, cap in enumerate(capacities)]
    outcomes = {}

    def mover(i, crossed, size, start):
        yield env.timeout(start)
        try:
            yield bw.transfer(size, [channels[c] for c in crossed], label=f"f{i}")
            outcomes[i] = "done"
        except RuntimeError:
            outcomes[i] = "failed"

    def killer():
        yield env.timeout(fail_at)
        bw.fail_channel(channels[victim % len(channels)], RuntimeError("fabric died"))

    for i, (crossed, size, start) in enumerate(flow_specs):
        env.process(mover(i, crossed, size, start))
    if fail_at is not None:
        env.process(killer())
    # The same drain loop as Environment.run(None), with the oracle check
    # inserted after every popped event and every end-of-instant flush.
    while True:
        while env._queue:
            env.step()
            assert_persistent_components_match_bfs(bw)
        env._flush_instant()
        assert_persistent_components_match_bfs(bw)
        if not env._queue:
            break
    assert len(outcomes) == len(flow_specs)
    assert bw.active_flows == 0


class TestPersistentStateOracle:
    """The tentpole contracts of persistent solver state.

    The union-find connectivity and the delta-maintained flat arrays are
    pure caches of what a BFS discovery plus a from-scratch array build
    would produce; these tests pin that equivalence step-by-step (structure)
    and float-by-float (rates), including under mid-flight channel failures.
    """

    @settings(max_examples=40, deadline=None)
    @given(topology=topologies())
    def test_union_find_component_equals_bfs_at_every_step(self, topology):
        capacities, flow_specs = topology
        drive_stepwise_checking_components(capacities, flow_specs)

    @settings(max_examples=30, deadline=None)
    @given(
        topology=topologies(),
        fail_at=st.floats(0.5, 20.0),
        victim=st.integers(0, 5),
    )
    def test_union_find_component_equals_bfs_under_failures(
        self, topology, fail_at, victim
    ):
        capacities, flow_specs = topology
        drive_stepwise_checking_components(
            capacities, flow_specs, fail_at=fail_at, victim=victim
        )

    @settings(max_examples=50, deadline=None)
    @given(topology=burst_topologies())
    def test_persistent_rates_equal_fresh_rebuild_exactly(self, topology):
        """Completion times under delta-maintained arrays must equal the
        fresh-rebuild engine's exactly -- not approximately."""
        capacities, flow_specs = topology
        persistent = run_schedule(capacities, flow_specs, batching=True)
        fresh = run_schedule(
            capacities, flow_specs, batching=True, persistence=False
        )
        assert persistent == fresh  # exact float equality

    @settings(max_examples=30, deadline=None)
    @given(topology=burst_topologies())
    def test_persistent_replans_are_reference_exact(self, topology):
        """verify=True under the persistent engine re-derives every replan
        through the global reference solver *and* re-validates the
        persistent component/array state against a fresh discovery; running
        to completion is the assertion."""
        capacities, flow_specs = topology
        done = run_schedule(capacities, flow_specs, batching=True, verify=True)
        assert len(done) == len(flow_specs)

    def test_union_and_split_counters(self):
        """A flow bridging two live components records one union; its
        completion splits the component back apart and records rebuilds."""
        from repro.sim.instrumentation import counters_reset, counters_snapshot

        counters_reset()
        env = Environment()
        bw = BandwidthSystem(env, config=SolverConfig(verify=True))
        a = bw.channel(50.0, "a")
        b = bw.channel(50.0, "b")
        bw.transfer(1000.0, [a], label="fa")
        bw.transfer(2000.0, [b], label="fb")
        # Attached third, so both single-channel components already exist
        # and the bridge merges them: exactly one union.
        bw.transfer(10.0, [a, b], label="bridge")
        env.run()
        after = counters_snapshot()
        assert after.bw_flows_completed == 3
        assert after.bw_cc_unions == 1
        # The bridge finishes first, splitting {fa} from {fb} again.
        assert after.bw_cc_rebuilds >= 1

    def test_array_delta_counters_on_large_component(self):
        """A component big enough for the vectorised path materialises its
        arrays once (full rebuild) and then compacts them in place as flows
        complete (delta updates) instead of rebuilding."""
        from repro.sim.instrumentation import counters_reset, counters_snapshot

        counters_reset()
        env = Environment()
        bw = BandwidthSystem(env, config=SolverConfig(verify=True))
        link = bw.channel(100.0, "link")
        for i in range(24):
            # Distinct sizes: completions are spread over distinct instants,
            # each one a detach against the persistent arrays.
            bw.transfer(1000.0 + 10.0 * i, [link], label=f"f{i}")
        env.run()
        after = counters_snapshot()
        assert after.bw_flows_completed == 24
        assert after.bw_array_full_rebuilds >= 1
        assert after.bw_array_delta_updates >= 1

    def test_persistence_off_keeps_counters_zero(self):
        """With persistence disabled nothing maintains cross-event state, so
        none of the persistence counters may move."""
        from repro.sim.instrumentation import counters_reset, counters_snapshot

        counters_reset()
        env = Environment()
        bw = BandwidthSystem(env, config=SolverConfig(persistence=False))
        a = bw.channel(50.0, "a")
        b = bw.channel(50.0, "b")
        bw.transfer(1000.0, [a], label="fa")
        bw.transfer(2000.0, [b], label="fb")
        bw.transfer(10.0, [a, b], label="bridge")
        for i in range(24):
            bw.transfer(1000.0 + 10.0 * i, [a], label=f"f{i}")
        env.run()
        after = counters_snapshot()
        assert after.bw_flows_completed == 27
        assert after.bw_cc_unions == 0
        assert after.bw_cc_rebuilds == 0
        assert after.bw_array_delta_updates == 0
        assert after.bw_array_full_rebuilds == 0


# -- the reference solver itself -------------------------------------------------------


class TestReferenceSolver:
    def test_single_bottleneck_split_evenly(self):
        env, bw = build_system(verify=False)
        link = bw.channel(90.0, "link")
        done = [bw.transfer(1000.0, [link], label=f"t{i}") for i in range(3)]
        rates = reference_allocation(bw._flows)
        assert sorted(rates.values()) == [30.0, 30.0, 30.0]
        env.run()
        assert all(d.processed for d in done)

    def test_cross_traffic_water_filling(self):
        env, bw = build_system(verify=False)
        a = bw.channel(100.0, "A")
        b = bw.channel(40.0, "B")
        bw.transfer(4000.0, [a, b], label="ab")
        bw.transfer(6000.0, [a], label="a")
        by_label = {f.label: r for f, r in reference_allocation(bw._flows).items()}
        # Max-min: the two-channel flow is limited by B to 40, the other
        # flow then takes the remaining 60 on A.
        assert by_label["ab"] == 40.0
        assert by_label["a"] == 60.0
        env.run()

    def test_empty_input(self):
        assert reference_allocation([]) == {}


# -- component partitioning ------------------------------------------------------------


class TestComponentPartitioning:
    def test_components_never_cross_disjoint_fabrics(self):
        """Two fabrics without a shared channel stay separate components."""
        env, bw = build_system(verify=False)
        # Fabric 1: a switch with two NICs.  Fabric 2: an isolated disk.
        switch = bw.channel(100.0, "switch")
        nic_a = bw.channel(50.0, "nic-a")
        nic_b = bw.channel(50.0, "nic-b")
        disk = bw.channel(80.0, "disk")
        bw.transfer(1000.0, [nic_a, switch], label="net-1")
        bw.transfer(1000.0, [nic_b, switch], label="net-2")
        bw.transfer(1000.0, [disk], label="disk-io")
        net = bw._component([switch])
        assert sorted(f.label for f in net) == ["net-1", "net-2"]
        isolated = bw._component([disk])
        assert [f.label for f in isolated] == ["disk-io"]
        env.run()

    def test_components_merge_through_shared_channels(self):
        env, bw = build_system(verify=False)
        a = bw.channel(10.0, "a")
        b = bw.channel(10.0, "b")
        c = bw.channel(10.0, "c")
        bw.transfer(100.0, [a, b], label="ab")
        bw.transfer(100.0, [b, c], label="bc")
        component = bw._component([a])
        assert sorted(f.label for f in component) == ["ab", "bc"]
        env.run()

    def test_fabric_times_independent_of_unrelated_traffic(self):
        """A fabric's completion times must not change when a disjoint
        fabric is busy -- not even in the last float ulp.

        This is the observable guarantee of component partitioning: under
        the historical global recomputation, unrelated events re-rounded
        every flow's remaining bytes, so heavy traffic elsewhere could shift
        completion times by a few ulps.
        """

        def run_fabric(with_noise):
            env = Environment()
            bw = BandwidthSystem(env)
            link = bw.channel(73.0, "fabric-a")
            times = {}

            def mover(i, delay, nbytes, channel):
                yield env.timeout(delay)
                yield bw.transfer(nbytes, [channel], label=f"m{i}")
                times[i] = env.now

            for i in range(5):
                env.process(mover(i, i * 0.13, 911.0 + 37.3 * i, link))
            if with_noise:
                noise = bw.channel(19.0, "fabric-b")
                for i in range(40):
                    env.process(mover(100 + i, i * 0.05, 131.7 + i, noise))
            env.run()
            return {k: v for k, v in times.items() if k < 100}

        quiet = run_fabric(with_noise=False)
        noisy = run_fabric(with_noise=True)
        assert quiet == noisy  # exact float equality, not approx

    def test_starved_system_raises(self):
        """No active flow with a finite horizon is a modelling error."""
        env, bw = build_system(verify=False)
        link = bw.channel(10.0, "link")
        bw.transfer(100.0, [link])
        bw._flush_pending()  # plan the flow; a parked flow may legally idle
        # Force an impossible state: zero out the rate behind the engine's
        # back and ask it to replan.
        (flow,) = bw._flows
        flow.rate = 0.0
        flow.deadline = math.inf
        bw._heap.clear()
        with pytest.raises(SimulationError):
            bw._arm_timer()


# -- deterministic work accounting -----------------------------------------------------


class TestSolverCounters:
    def test_component_counters_reflect_partitioning(self):
        from repro.sim.instrumentation import counters_reset, counters_snapshot

        counters_reset()
        env, bw = build_system(verify=False)
        disks = [bw.channel(50.0, f"disk{i}") for i in range(4)]
        for i, disk in enumerate(disks):
            # Distinct sizes so no two completions coincide (coinciding
            # deadlines are legitimately recomputed as one merged batch).
            bw.transfer(500.0 + 10.0 * i, [disk], label=f"io{i}")
        env.run()
        after = counters_snapshot()
        assert after.bw_flows_started == 4
        assert after.bw_flows_completed == 4
        # Single-channel fabrics: no recomputation ever spans more than one
        # flow, no matter how many disks are busy at once.
        assert after.bw_max_component_flows == 1
        assert after.bw_allocations >= 4
