"""Unit tests for the ByteSource payload abstraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import LiteralBytes, SyntheticBytes, ZeroBytes, concat
from repro.util.bytesource import ByteSource


class TestLiteralBytes:
    def test_size_and_read(self):
        src = LiteralBytes(b"hello world")
        assert src.size == 11
        assert src.read() == b"hello world"
        assert src.read(6, 5) == b"world"

    def test_slice_matches_read(self):
        src = LiteralBytes(bytes(range(100)))
        assert src.slice(10, 20).read() == src.read(10, 20)

    def test_out_of_range_read_raises(self):
        src = LiteralBytes(b"abc")
        with pytest.raises(ValueError):
            src.read(1, 5)
        with pytest.raises(ValueError):
            src.read(-1, 1)

    def test_equality_by_content(self):
        assert LiteralBytes(b"abc") == LiteralBytes(b"abc")
        assert LiteralBytes(b"abc") != LiteralBytes(b"abd")
        assert LiteralBytes(b"abc") != LiteralBytes(b"abcd")

    def test_to_bytes(self):
        assert LiteralBytes(b"xyz").to_bytes() == b"xyz"


class TestZeroBytes:
    def test_reads_zeros(self):
        src = ZeroBytes(16)
        assert src.read() == b"\x00" * 16
        assert src.read(4, 4) == b"\x00" * 4

    def test_slice(self):
        assert ZeroBytes(10).slice(2, 5).size == 5

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ZeroBytes(-1)

    def test_equals_literal_zeros(self):
        assert ZeroBytes(8) == LiteralBytes(b"\x00" * 8)


class TestSyntheticBytes:
    def test_deterministic(self):
        a = SyntheticBytes("seed", 4096)
        b = SyntheticBytes("seed", 4096)
        assert a.read() == b.read()
        assert a == b

    def test_different_seed_different_content(self):
        a = SyntheticBytes("seed-a", 1024)
        b = SyntheticBytes("seed-b", 1024)
        assert a.read() != b.read()

    def test_slice_consistency(self):
        src = SyntheticBytes("slices", 200_000)
        assert src.slice(70_000, 1000).read() == src.read(70_000, 1000)

    def test_nested_slicing(self):
        src = SyntheticBytes("nested", 100_000)
        outer = src.slice(10_000, 50_000)
        assert outer.slice(5_000, 100).read() == src.read(15_000, 100)

    def test_huge_size_not_materialised(self):
        src = SyntheticBytes("huge", 10 * 1024**3)
        assert src.size == 10 * 1024**3
        with pytest.raises(ValueError):
            src.to_bytes()
        # but small windows can still be read
        assert len(src.read(5 * 1024**3, 64)) == 64

    def test_fingerprint_distinguishes_windows(self):
        src = SyntheticBytes("fp", 4096)
        assert src.slice(0, 1024).fingerprint() != src.slice(1024, 1024).fingerprint()


class TestConcat:
    def test_concat_roundtrip(self):
        parts = [LiteralBytes(b"abc"), ZeroBytes(3), LiteralBytes(b"def")]
        joined = concat(parts)
        assert joined.size == 9
        assert joined.read() == b"abc\x00\x00\x00def"

    def test_concat_window_read(self):
        joined = concat([LiteralBytes(b"0123"), LiteralBytes(b"4567"), LiteralBytes(b"89")])
        assert joined.read(2, 5) == b"23456"

    def test_concat_slice(self):
        joined = concat([LiteralBytes(b"0123"), LiteralBytes(b"4567")])
        assert joined.slice(3, 3).read() == b"345"

    def test_concat_empty(self):
        assert concat([]).size == 0
        assert concat([LiteralBytes(b"")]).size == 0

    def test_concat_single_passthrough(self):
        part = LiteralBytes(b"solo")
        assert concat([part]) is part

    def test_equals_equivalent_literal(self):
        joined = concat([LiteralBytes(b"ab"), LiteralBytes(b"cd")])
        assert joined == LiteralBytes(b"abcd")


@settings(max_examples=50, deadline=None)
@given(
    data=st.binary(min_size=0, max_size=2000),
    window=st.tuples(st.integers(0, 1999), st.integers(0, 1999)),
)
def test_property_literal_slice_equals_python_slice(data, window):
    """slice/read must agree with Python byte slicing for every window."""
    start, length = window
    src = LiteralBytes(data)
    start = min(start, len(data))
    length = min(length, len(data) - start)
    assert src.read(start, length) == data[start : start + length]
    assert src.slice(start, length).read() == data[start : start + length]


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 500), min_size=1, max_size=6),
    seed=st.integers(0, 10),
)
def test_property_concat_equals_joined_bytes(sizes, seed):
    """Concatenation behaves exactly like joining the materialised parts."""
    parts = [SyntheticBytes((seed, i), n) for i, n in enumerate(sizes)]
    joined = concat(parts)
    reference = b"".join(p.read() for p in parts)
    assert joined.size == len(reference)
    assert joined.read() == reference
    if joined.size >= 2:
        mid = joined.size // 2
        assert joined.read(1, mid) == reference[1 : 1 + mid]


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(1, 100_000),
    offset=st.integers(0, 99_999),
    length=st.integers(0, 4096),
)
def test_property_synthetic_slice_window(size, offset, length):
    """Any window of a SyntheticBytes equals the same window of its slices."""
    src = SyntheticBytes("prop", size)
    offset = min(offset, size)
    length = min(length, size - offset)
    assert src.slice(offset, length).read() == src.read(offset, length)


def test_bytesource_is_abstract():
    with pytest.raises(TypeError):
        ByteSource()  # type: ignore[abstract]
