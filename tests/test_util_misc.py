"""Unit tests for units, rng and configuration helpers."""

import dataclasses

import pytest

from repro.util import (
    GRAPHENE,
    ClusterSpec,
    DiskSpec,
    NetworkSpec,
    format_bytes,
    format_duration,
    make_rng,
    stable_hash,
    stable_seed,
)
from repro.util.config import BlobSeerSpec, CheckpointSpec, PVFSSpec, VMSpec
from repro.util.errors import ConfigurationError


class TestUnits:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(256 * 1024) == "256.0 KiB"
        assert format_bytes(3 * 1024**2) == "3.0 MiB"
        assert format_bytes(2 * 1024**3) == "2.0 GiB"

    def test_format_bytes_negative(self):
        assert format_bytes(-1024) == "-1.0 KiB"

    def test_format_duration(self):
        assert format_duration(5e-7).endswith("us")
        assert format_duration(0.0021) == "2.1 ms"
        assert format_duration(3.5) == "3.50 s"
        assert format_duration(75) == "1m 15.0s"
        assert format_duration(3700).startswith("1h")


class TestRng:
    def test_stable_hash_is_stable(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)

    def test_stable_seed_range(self):
        for i in range(20):
            assert 0 <= stable_seed("x", i) < 2**31

    def test_make_rng_deterministic(self):
        a = make_rng("node", 3).integers(0, 1000, size=10)
        b = make_rng("node", 3).integers(0, 1000, size=10)
        assert list(a) == list(b)

    def test_make_rng_distinct_streams(self):
        a = make_rng("node", 1).integers(0, 10**9)
        b = make_rng("node", 2).integers(0, 10**9)
        assert a != b


class TestConfig:
    def test_graphene_defaults_validate(self):
        GRAPHENE.validate()
        assert GRAPHENE.compute_nodes == 120
        assert GRAPHENE.blobseer.chunk_size == 256 * 1024
        assert GRAPHENE.disk.bandwidth == pytest.approx(55e6)
        assert GRAPHENE.network.nic_bandwidth == pytest.approx(117.5e6)

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GRAPHENE.disk.bandwidth = 1.0  # type: ignore[misc]

    def test_scaled_override(self):
        small = GRAPHENE.scaled(compute_nodes=8)
        assert small.compute_nodes == 8
        assert GRAPHENE.compute_nodes == 120

    @pytest.mark.parametrize(
        "spec",
        [
            DiskSpec(bandwidth=0),
            DiskSpec(capacity=-1),
            NetworkSpec(nic_bandwidth=0),
            NetworkSpec(latency=-1),
            VMSpec(vcpus=0),
            BlobSeerSpec(chunk_size=0),
            BlobSeerSpec(replication=0),
            PVFSSpec(io_servers=0),
            PVFSSpec(concurrency_efficiency=0.0),
            CheckpointSpec(cow_block_size=0),
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(compute_nodes=0).validate()
        with pytest.raises(ConfigurationError):
            ClusterSpec(jitter=1.5).validate()
