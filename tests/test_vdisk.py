"""Unit and property tests for block devices, raw images and qcow2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import LiteralBytes, SyntheticBytes
from repro.util.errors import SnapshotError, StorageError
from repro.vdisk import DirtyTracker, QcowImage, RawImage, SparseDevice


class TestSparseDevice:
    def test_reads_zeros_initially(self):
        dev = SparseDevice(1024, block_size=128)
        assert dev.read(0, 64).read() == b"\x00" * 64

    def test_write_read_roundtrip(self):
        dev = SparseDevice(4096, block_size=256)
        dev.write(100, LiteralBytes(b"hello"))
        assert dev.read(100, 5).read() == b"hello"
        assert dev.read(99, 7).read() == b"\x00hello\x00"

    def test_write_spanning_blocks(self):
        dev = SparseDevice(4096, block_size=128)
        payload = bytes(range(256))
        dev.write(64, LiteralBytes(payload))
        assert dev.read(64, 256).read() == payload

    def test_out_of_range_rejected(self):
        dev = SparseDevice(100)
        with pytest.raises(StorageError):
            dev.write(90, LiteralBytes(b"x" * 20))
        with pytest.raises(StorageError):
            dev.read(90, 20)

    def test_base_overlay_copy_on_write(self):
        base = SparseDevice(1024, block_size=128)
        base.write(0, LiteralBytes(b"base-content" * 10))
        overlay = SparseDevice(1024, block_size=128, base=base)
        assert overlay.read(0, 12).read() == b"base-content"
        overlay.write(0, LiteralBytes(b"OVER"))
        assert overlay.read(0, 12).read() == b"OVER-content"
        # the base is untouched
        assert base.read(0, 4).read() == b"base"

    def test_allocated_bytes_tracks_writes(self):
        dev = SparseDevice(10_000, block_size=100)
        assert dev.allocated_bytes == 0
        dev.write(0, LiteralBytes(b"x" * 250))
        assert dev.allocated_bytes == 300  # three 100-byte blocks touched

    def test_invalid_size(self):
        with pytest.raises(StorageError):
            SparseDevice(0)


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 2000), st.binary(min_size=1, max_size=400)),
        min_size=1,
        max_size=10,
    )
)
def test_property_sparse_device_matches_reference(writes):
    """A SparseDevice behaves like a zero-initialised bytearray."""
    dev = SparseDevice(4096, block_size=128)
    reference = bytearray(4096)
    for offset, data in writes:
        if offset + len(data) > 4096:
            data = data[: 4096 - offset]
        if not data:
            continue
        dev.write(offset, LiteralBytes(data))
        reference[offset : offset + len(data)] = data
    assert dev.read(0, 4096).read() == bytes(reference)


class TestRawImage:
    def test_file_size_is_virtual_size(self):
        img = RawImage(1_000_000)
        assert img.file_size == 1_000_000
        img.write(0, LiteralBytes(b"data"))
        assert img.file_size == 1_000_000

    def test_allocated_tracks_content(self):
        img = RawImage(1_000_000, block_size=1024)
        img.write(0, SyntheticBytes("os", 10_000))
        assert 10_000 <= img.allocated_bytes <= 11 * 1024


class TestQcowImage:
    def test_backing_file_read_through(self):
        base = RawImage(10_000, block_size=512)
        base.write(0, LiteralBytes(b"operating-system" * 10))
        overlay = QcowImage(10_000, cluster_size=512, backing=base)
        assert overlay.read(0, 16).read() == b"operating-system"

    def test_write_allocates_clusters_copy_on_write(self):
        base = RawImage(10_000, block_size=512)
        base.write(0, LiteralBytes(b"A" * 2048))
        overlay = QcowImage(10_000, cluster_size=512, backing=base)
        overlay.write(100, LiteralBytes(b"B" * 10))
        data = overlay.read(0, 512).read()
        assert data[:100] == b"A" * 100
        assert data[100:110] == b"B" * 10
        assert data[110:] == b"A" * 402
        assert base.read(100, 10).read() == b"A" * 10
        assert overlay.allocated_clusters == 1

    def test_file_size_grows_with_allocation(self):
        overlay = QcowImage(10**6, cluster_size=1024)
        empty = overlay.file_size
        overlay.write(0, SyntheticBytes("x", 10 * 1024))
        assert overlay.file_size >= empty + 10 * 1024

    def test_rewrite_same_cluster_does_not_grow(self):
        overlay = QcowImage(10**6, cluster_size=1024)
        overlay.write(0, LiteralBytes(b"a" * 1024))
        size_after_first = overlay.file_size
        overlay.write(0, LiteralBytes(b"b" * 1024))
        assert overlay.file_size == size_after_first

    def test_internal_snapshot_freezes_state(self):
        img = QcowImage(10**6, cluster_size=1024)
        img.write(0, LiteralBytes(b"version-1" + b"\x00" * 1015))
        img.create_internal_snapshot("ckpt1", vm_state_size=5000)
        img.write(0, LiteralBytes(b"version-2" + b"\x00" * 1015))
        assert img.read(0, 9).read() == b"version-2"
        img.revert_to_internal_snapshot("ckpt1")
        assert img.read(0, 9).read() == b"version-1"

    def test_snapshot_makes_overwrites_allocate_new_clusters(self):
        img = QcowImage(10**6, cluster_size=1024)
        img.write(0, LiteralBytes(b"a" * 1024))
        img.create_internal_snapshot("s1")
        before = img.file_size
        img.write(0, LiteralBytes(b"b" * 1024))
        assert img.file_size == before + 1024

    def test_vm_state_counted_in_file_size(self):
        img = QcowImage(10**6, cluster_size=1024)
        img.write(0, LiteralBytes(b"x" * 1024))
        before = img.file_size
        img.create_internal_snapshot("full", vm_state_size=100_000)
        assert img.file_size == before + 100_000

    def test_duplicate_snapshot_name_rejected(self):
        img = QcowImage(10**6)
        img.create_internal_snapshot("s")
        with pytest.raises(SnapshotError):
            img.create_internal_snapshot("s")

    def test_revert_unknown_snapshot_rejected(self):
        with pytest.raises(SnapshotError):
            QcowImage(10**6).revert_to_internal_snapshot("nope")

    def test_clone_file_is_independent(self):
        img = QcowImage(10**6, cluster_size=1024)
        img.write(0, LiteralBytes(b"original" + b"\x00" * 1016))
        copy = img.clone_file("copy")
        assert copy.read(0, 8).read() == b"original"
        img.write(0, LiteralBytes(b"MUTATED!"))
        assert copy.read(0, 8).read() == b"original"
        assert img.read(0, 8).read() == b"MUTATED!"

    def test_rebase(self):
        base = RawImage(10_000, block_size=512)
        base.write(0, LiteralBytes(b"base"))
        img = QcowImage(10_000, cluster_size=512)
        assert img.read(0, 4).read() == b"\x00" * 4
        img.rebase(base)
        assert img.read(0, 4).read() == b"base"

    def test_invalid_parameters(self):
        with pytest.raises(StorageError):
            QcowImage(0)
        with pytest.raises(StorageError):
            QcowImage(100, cluster_size=0)
        base = RawImage(1000)
        with pytest.raises(StorageError):
            QcowImage(500, backing=base)


@settings(max_examples=20, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 3000), st.binary(min_size=1, max_size=500)),
        min_size=1,
        max_size=8,
    )
)
def test_property_qcow_overlay_matches_reference(writes):
    """A qcow2 overlay over a base image reads like base-then-overwrites."""
    base = RawImage(4096, block_size=256)
    base_content = bytes(SyntheticBytes("qcow-base", 4096).read())
    base.write(0, LiteralBytes(base_content))
    overlay = QcowImage(4096, cluster_size=256, backing=base)
    reference = bytearray(base_content)
    for offset, data in writes:
        if offset + len(data) > 4096:
            data = data[: 4096 - offset]
        if not data:
            continue
        overlay.write(offset, LiteralBytes(data))
        reference[offset : offset + len(data)] = data
    assert overlay.read(0, 4096).read() == bytes(reference)
    assert base.read(0, 4096).read() == base_content


class TestDirtyTracker:
    def test_mark_window(self):
        tracker = DirtyTracker(block_size=100)
        tracker.mark_window(250, 300)
        assert tracker.dirty_blocks == {2, 3, 4, 5}
        assert tracker.dirty_bytes == 400

    def test_epochs(self):
        tracker = DirtyTracker(block_size=10)
        tracker.mark(1)
        first = tracker.close_epoch()
        tracker.mark(2)
        assert first == {1}
        assert tracker.dirty_blocks == {2}
        assert tracker.blocks_dirty_since(0) == {1, 2}
        assert tracker.blocks_dirty_since(1) == {2}

    def test_zero_length_window(self):
        tracker = DirtyTracker(block_size=10)
        tracker.mark_window(5, 0)
        assert tracker.dirty_blocks == set()

    def test_stats(self):
        tracker = DirtyTracker(block_size=10)
        tracker.mark(0)
        tracker.close_epoch()
        tracker.mark(1)
        stats = tracker.stats()
        assert stats["epochs"] == 1
        assert stats["current_dirty_blocks"] == 1
        assert stats["total_dirty_blocks"] == 2
