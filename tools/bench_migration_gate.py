#!/usr/bin/env python
"""CI gate for the live-migration backend.

Runs the reference evacuation cells (``evac:pre-copy:45``,
``evac:post-copy:45`` and ``evac:stop-and-copy:45`` by default) once,
sequentially, and enforces the claim the ``blobcr-migrate`` backend is built
on: iterative pre-copy keeps the guest's unavailability window *shorter*
than the monolithic stop-and-copy baseline, because only the residue of the
final round (plus runtime state) is moved while the guest is suspended.
The gate fails if:

* any reference cell fails to verify (surviving state diverged, or a host
  that should have survived did not), or
* pre-copy downtime is not strictly below stop-and-copy downtime by at
  least ``--min-downtime-ratio`` (default 2.0x), or
* post-copy downtime is not strictly below stop-and-copy downtime (the
  immediate switchover must never be slower than copying everything first).

Cell selection goes through the CLI's shared
:func:`repro.cli.resolve_run_inputs` pipeline, so the gate accepts exactly
the selectors ``blobcr-repro run --cells`` accepts, by construction.  The
run is written out as a JSON artifact (``--out``) so CI can upload it for
inspection.  Typical CI use::

    python tools/bench_migration_gate.py --out bench-migration-gate.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: the reference evacuation cells, one per gated policy
DEFAULT_CELLS = "evac:pre-copy:45,evac:post-copy:45,evac:stop-and-copy:45"


def run_cells(cells: str) -> dict:
    """Run the selected evac cells sequentially; return rows + timing."""
    from repro.cli import resolve_run_inputs
    from repro.runner import ParallelRunner, load_all

    experiments, selectors, config = resolve_run_inputs(
        load_all(), [], [cells], [], paper_scale=False
    )
    started = time.perf_counter()
    report = ParallelRunner(workers=1).run(experiments, config, selectors)
    wall = time.perf_counter() - started
    return {
        "schema": "blobcr-repro/migration-gate",
        "cells": cells,
        "wall_seconds": wall,
        "rows": [row for result in report.results for row in result.rows],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", default=DEFAULT_CELLS)
    parser.add_argument(
        "--min-downtime-ratio",
        type=float,
        default=2.0,
        help="required stop-and-copy/pre-copy downtime ratio (default 2.0)",
    )
    parser.add_argument("--out", default=None, help="run artifact path")
    args = parser.parse_args(argv)

    print(f"[migration-gate] cells={args.cells}", flush=True)
    result = run_cells(args.cells)
    by_policy = {row["policy"]: row for row in result["rows"]}
    for policy, row in by_policy.items():
        print(
            f"[migration-gate] {policy:<13}: downtime={row['downtime_s']:.3f}s "
            f"total={row['total_s']:.3f}s bytes={row['bytes_moved']}",
            flush=True,
        )

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
        print(f"[migration-gate] wrote {args.out}")

    failures = []
    for policy, row in by_policy.items():
        if not row.get("verified", False):
            failures.append(f"{policy} cell did not verify its surviving state")
    missing = {"pre-copy", "stop-and-copy"} - set(by_policy)
    if missing:
        failures.append(
            f"gated policies missing from the selected cells: {sorted(missing)}"
        )
    if not failures:
        stop_copy = by_policy["stop-and-copy"]["downtime_s"]
        pre_copy = by_policy["pre-copy"]["downtime_s"]
        ratio = stop_copy / max(pre_copy, 1e-9)
        print(f"[migration-gate] stop-and-copy/pre-copy downtime ratio: {ratio:.2f}x")
        if ratio < args.min_downtime_ratio:
            failures.append(
                f"pre-copy downtime ({pre_copy:.3f}s) is only {ratio:.2f}x below "
                f"stop-and-copy ({stop_copy:.3f}s); required >= "
                f"{args.min_downtime_ratio:.2f}x"
            )
        post_copy = by_policy.get("post-copy")
        if post_copy is not None and post_copy["downtime_s"] >= stop_copy:
            failures.append(
                f"post-copy downtime ({post_copy['downtime_s']:.3f}s) is not "
                f"below stop-and-copy ({stop_copy:.3f}s)"
            )

    for failure in failures:
        print(f"[migration-gate] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[migration-gate] OK: live migration beats stop-and-copy downtime")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
