#!/usr/bin/env python
"""CI A/B gate for the batched bandwidth solver.

Runs one paper-scale cell (``scale:BlobCR-app:512`` by default) twice in the
same process -- once with same-instant batching + the vectorised progressive
filling loop (the default engine) and once with
``cluster.solver.batching=false`` (the per-event scalar engine) -- and then
enforces the two contracts the batched redesign makes:

* **rows are byte-identical**: the solver configuration is a pure
  performance knob; any divergence in the merged scenario rows fails the
  gate immediately,
* **the batched solver path is faster**: wall-clock seconds spent inside the
  solver entry points (measured by
  :func:`repro.sim.bandwidth.solver_wall_seconds`, so the comparison is not
  diluted by the application model, which is identical on both sides) must
  improve by at least ``--min-speedup`` (default 1.5x).

Both runs are written out as JSON artifacts (``--out-batched`` /
``--out-scalar``) so CI can upload them for inspection.  Typical CI use::

    python tools/bench_solver_ab.py \
        --cell scale:BlobCR-app:512 \
        --out-batched bench-solver-batched.json \
        --out-scalar bench-solver-scalar.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def run_cell(cell: str, *, batching: bool) -> dict:
    """Run one paper-scale cell and return rows + timing."""
    from repro.api.session import Session
    from repro.sim.bandwidth import solver_wall_reset, solver_wall_seconds

    overrides = [] if batching else ["cluster.solver.batching=false"]
    solver_wall_reset()
    started = time.perf_counter()
    report = Session().run_scenario(
        "scale", cells=[cell], overrides=overrides, paper_scale=True
    )
    wall = time.perf_counter() - started
    return {
        "schema": "blobcr-repro/solver-ab",
        "cell": cell,
        "batching": batching,
        "wall_seconds": wall,
        "solver_seconds": solver_wall_seconds(),
        "rows": report.rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cell", default="scale:BlobCR-app:512")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="required solver-path speedup of batched over scalar (default 1.5)",
    )
    parser.add_argument("--out-batched", default=None, help="batched run artifact path")
    parser.add_argument("--out-scalar", default=None, help="scalar run artifact path")
    args = parser.parse_args(argv)

    print(f"[solver-ab] cell={args.cell}", flush=True)
    scalar = run_cell(args.cell, batching=False)
    print(
        f"[solver-ab] scalar:  wall={scalar['wall_seconds']:.2f}s "
        f"solver={scalar['solver_seconds']:.2f}s",
        flush=True,
    )
    batched = run_cell(args.cell, batching=True)
    print(
        f"[solver-ab] batched: wall={batched['wall_seconds']:.2f}s "
        f"solver={batched['solver_seconds']:.2f}s",
        flush=True,
    )

    for path, payload in ((args.out_batched, batched), (args.out_scalar, scalar)):
        if path:
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"[solver-ab] wrote {path}")

    failures = []
    if json.dumps(batched["rows"], sort_keys=True) != json.dumps(
        scalar["rows"], sort_keys=True
    ):
        failures.append(
            "rows diverge between the batched and scalar solver paths; "
            "the solver configuration must not change results"
        )
    speedup = scalar["solver_seconds"] / max(batched["solver_seconds"], 1e-9)
    print(f"[solver-ab] solver-path speedup: {speedup:.2f}x")
    if speedup < args.min_speedup:
        failures.append(
            f"batched solver path is only {speedup:.2f}x faster than scalar "
            f"(required: >= {args.min_speedup:.2f}x)"
        )

    for failure in failures:
        print(f"[solver-ab] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[solver-ab] OK: rows identical, speedup gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
