#!/usr/bin/env python
"""CI A/B/C gate for the batched + persistent bandwidth solver.

Runs one paper-scale cell (``scale:BlobCR-app:512`` by default) three times
in the same process:

1. **scalar** -- ``cluster.solver.batching=false``: the per-event scalar
   engine (runs first so interpreter/numpy warmup is absorbed by the
   baseline, not charged to a measured side),
2. **batched** -- ``cluster.solver.persistence=false``: same-instant
   batching + the vectorised progressive-filling loop, but components and
   solver arrays rebuilt from scratch at every recomputation (the PR 7
   engine),
3. **persist** -- the default engine: batching plus persistent component /
   array maintenance across events.

and then enforces the contracts the solver redesigns make:

* **rows are byte-identical across all three**: the solver configuration is
  a pure performance knob; any divergence in the merged scenario rows fails
  the gate immediately,
* **batching is faster than scalar** on wall-clock seconds spent inside the
  solver entry points (measured by
  :func:`repro.sim.bandwidth.solver_wall_seconds`, so the comparison is not
  diluted by the application model, which is identical on all sides) by at
  least ``--min-speedup`` (default 1.5x),
* **persistence is faster than batching alone** on the same metric by at
  least ``--min-persist-speedup`` (default 1.2x).

Cell selection goes through the CLI's shared
:func:`repro.cli.resolve_run_inputs` pipeline, so the gate accepts exactly
the selectors ``blobcr-repro run --cells`` accepts, by construction.

All three runs are written out as JSON artifacts (``--out-scalar`` /
``--out-batched`` / ``--out-persist``) so CI can upload them for
inspection.  Typical CI use::

    python tools/bench_solver_ab.py \
        --cell scale:BlobCR-app:512 \
        --out-scalar bench-solver-scalar.json \
        --out-batched bench-solver-batched.json \
        --out-persist bench-solver-persist.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: mode name -> extra solver override stream (the persist mode is the
#: default engine, so it needs none)
MODES = {
    "scalar": ["cluster.solver.batching=false"],
    "batched": ["cluster.solver.persistence=false"],
    "persist": [],
}


def run_cell(cell: str, mode: str) -> dict:
    """Run one paper-scale cell under one solver mode; return rows + timing."""
    from repro.cli import resolve_run_inputs
    from repro.runner import ParallelRunner, load_all
    from repro.sim.bandwidth import solver_wall_reset, solver_wall_seconds

    # The same selection/override/spec pipeline as ``blobcr-repro run``:
    # raises ConfigurationError on a malformed or unknown selector exactly
    # like the CLI would.
    experiments, selectors, config = resolve_run_inputs(
        load_all(), [], [cell], list(MODES[mode]), paper_scale=True
    )
    solver_wall_reset()
    started = time.perf_counter()
    report = ParallelRunner(workers=1).run(experiments, config, selectors)
    wall = time.perf_counter() - started
    return {
        "schema": "blobcr-repro/solver-ab",
        "cell": cell,
        "mode": mode,
        "overrides": MODES[mode],
        "wall_seconds": wall,
        "solver_seconds": solver_wall_seconds(),
        "rows": [row for result in report.results for row in result.rows],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cell", default="scale:BlobCR-app:512")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="required solver-path speedup of batched over scalar (default 1.5)",
    )
    parser.add_argument(
        "--min-persist-speedup",
        type=float,
        default=1.2,
        help="required solver-path speedup of persist over batched (default 1.2)",
    )
    parser.add_argument("--out-scalar", default=None, help="scalar run artifact path")
    parser.add_argument("--out-batched", default=None, help="batched run artifact path")
    parser.add_argument("--out-persist", default=None, help="persist run artifact path")
    args = parser.parse_args(argv)

    print(f"[solver-ab] cell={args.cell}", flush=True)
    results = {}
    for mode in ("scalar", "batched", "persist"):
        results[mode] = run_cell(args.cell, mode)
        print(
            f"[solver-ab] {mode:<7}: wall={results[mode]['wall_seconds']:.2f}s "
            f"solver={results[mode]['solver_seconds']:.2f}s",
            flush=True,
        )

    outs = {
        "scalar": args.out_scalar,
        "batched": args.out_batched,
        "persist": args.out_persist,
    }
    for mode, path in outs.items():
        if path:
            with open(path, "w") as fh:
                json.dump(results[mode], fh, indent=2, sort_keys=True)
            print(f"[solver-ab] wrote {path}")

    failures = []
    canonical = json.dumps(results["persist"]["rows"], sort_keys=True)
    for mode in ("scalar", "batched"):
        if json.dumps(results[mode]["rows"], sort_keys=True) != canonical:
            failures.append(
                f"rows diverge between the persist and {mode} solver paths; "
                "the solver configuration must not change results"
            )

    batch_speedup = results["scalar"]["solver_seconds"] / max(
        results["batched"]["solver_seconds"], 1e-9
    )
    print(f"[solver-ab] batched/scalar solver-path speedup: {batch_speedup:.2f}x")
    if batch_speedup < args.min_speedup:
        failures.append(
            f"batched solver path is only {batch_speedup:.2f}x faster than "
            f"scalar (required: >= {args.min_speedup:.2f}x)"
        )
    persist_speedup = results["batched"]["solver_seconds"] / max(
        results["persist"]["solver_seconds"], 1e-9
    )
    print(f"[solver-ab] persist/batched solver-path speedup: {persist_speedup:.2f}x")
    if persist_speedup < args.min_persist_speedup:
        failures.append(
            f"persistent solver path is only {persist_speedup:.2f}x faster than "
            f"batched (required: >= {args.min_persist_speedup:.2f}x)"
        )

    for failure in failures:
        print(f"[solver-ab] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[solver-ab] OK: rows identical across all three, speedup gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
