#!/usr/bin/env python
"""Documentation link checker (the CI ``docs`` job).

Checks ``README.md`` plus every page under ``docs/`` for:

* **relative links** — ``[text](path)`` targets must exist on disk
  (``http(s)://`` and ``mailto:`` links are out of scope: CI must not
  depend on external availability);
* **anchors** — ``page.md#section`` must name a real heading of the target
  page (GitHub slug rules), including same-page ``#section`` links;
* **file:line anchors** — inline code spans like ``src/repro/cli.py:42``
  must point at an existing file with at least that many lines, and plain
  repo-path spans like ``benchmarks/baseline.json`` must exist;
* **orphans** — every ``docs/*.md`` page must be reachable from
  ``README.md`` by following relative markdown links.

Pure stdlib so the CI job needs no package install.  Exits non-zero and
prints one line per problem.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, Set, Tuple

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
#: ``path/to/file.py:123`` inside a code span
FILE_LINE_RE = re.compile(r"^([\w./-]+\.(?:py|md|yml|yaml|json|toml)):(\d+)$")
#: a repo-relative file path inside a code span (must contain a slash so
#: shell snippets and bare module names are not misread as paths)
FILE_RE = re.compile(r"^\.?[\w./-]*/[\w.-]+\.(?:py|md|yml|yaml|json|toml)$")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def page_anchors(text: str) -> Set[str]:
    anchors: Set[str] = set()
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            anchors.add(github_slug(line.lstrip("#")))
    return anchors


def strip_fences(text: str) -> str:
    """Remove fenced code blocks (their content is not rendered as links)."""
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def collect_pages(root: str) -> List[str]:
    """README.md plus every markdown page under docs/, repo-relative."""
    pages = []
    if os.path.isfile(os.path.join(root, "README.md")):
        pages.append("README.md")
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                pages.append(os.path.join("docs", name))
    return pages


def check_page(
    root: str, page: str, anchors_by_page: Dict[str, Set[str]]
) -> Tuple[List[str], Set[str]]:
    """Problems of one page plus the markdown pages it links to."""
    problems: List[str] = []
    linked: Set[str] = set()
    text = open(os.path.join(root, page), encoding="utf-8").read()
    rendered = strip_fences(text)
    page_dir = os.path.dirname(page)

    for target in LINK_RE.findall(rendered):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, anchor = target.partition("#")
        if not path:  # same-page anchor
            if anchor not in anchors_by_page[page]:
                problems.append(f"{page}: broken same-page anchor #{anchor}")
            continue
        resolved = os.path.normpath(os.path.join(page_dir, path))
        if not os.path.exists(os.path.join(root, resolved)):
            problems.append(f"{page}: broken link {target} (no such file {resolved})")
            continue
        if resolved.endswith(".md"):
            linked.add(resolved)
            if anchor:
                known = anchors_by_page.get(resolved)
                if known is not None and anchor not in known:
                    problems.append(
                        f"{page}: broken anchor {target} (no heading #{anchor} in {resolved})"
                    )

    for span in CODE_SPAN_RE.findall(text):
        span = span.strip()
        match = FILE_LINE_RE.match(span)
        if match:
            path, line_no = match.group(1), int(match.group(2))
            full = os.path.join(root, os.path.normpath(path))
            if not os.path.isfile(full):
                problems.append(f"{page}: file:line anchor `{span}` (no such file {path})")
            else:
                lines = open(full, encoding="utf-8", errors="replace").read().count("\n") + 1
                if line_no > lines:
                    problems.append(
                        f"{page}: file:line anchor `{span}` ({path} has only {lines} lines)"
                    )
            continue
        if FILE_RE.match(span) and not os.path.exists(os.path.join(root, os.path.normpath(span))):
            problems.append(f"{page}: code-span path `{span}` does not exist")

    return problems, linked


def check_docs(root: str) -> List[str]:
    """Every documentation problem found under ``root`` (empty = healthy)."""
    pages = collect_pages(root)
    if not pages:
        return [f"no README.md or docs/ pages found under {root}"]
    anchors_by_page = {
        page: page_anchors(open(os.path.join(root, page), encoding="utf-8").read())
        for page in pages
    }
    problems: List[str] = []
    links: Dict[str, Set[str]] = {}
    for page in pages:
        page_problems, linked = check_page(root, page, anchors_by_page)
        problems.extend(page_problems)
        links[page] = linked

    # Orphan detection: every docs page must be reachable from README.md.
    reachable: Set[str] = set()
    frontier = ["README.md"] if "README.md" in links else []
    while frontier:
        page = frontier.pop()
        if page in reachable:
            continue
        reachable.add(page)
        frontier.extend(p for p in links.get(page, ()) if p in links)
    for page in pages:
        if page.startswith("docs/") and page not in reachable:
            problems.append(f"{page}: orphaned (not reachable from README.md via links)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=".", help="repository root to check (default: current directory)"
    )
    args = parser.parse_args(argv)
    problems = check_docs(args.root)
    for problem in problems:
        print(f"FAIL  {problem}", file=sys.stderr)
    pages = collect_pages(args.root)
    print(f"checked {len(pages)} page(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
